"""Functional tests for CKKS encryption and basic evaluator operations."""

import numpy as np
import pytest

from repro.ckks import Ciphertext

TOL = 5e-3


class TestEncryptDecrypt:
    def test_fresh_roundtrip(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        assert np.max(np.abs(toy_fhe.decrypt(ct) - z)) < TOL

    def test_complex_values(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng, complex_values=True)
        ct = toy_fhe.encrypt(z)
        assert np.max(np.abs(toy_fhe.decrypt(ct) - z)) < TOL

    def test_fresh_level_is_max(self, toy_fhe, rng):
        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng))
        assert ct.level == toy_fhe.context.max_level

    def test_encrypt_at_lower_level(self, toy_fhe, rng):
        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng), level=1)
        assert ct.level == 1

    def test_ciphertexts_are_randomized(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct1 = toy_fhe.encrypt(z)
        ct2 = toy_fhe.encrypt(z)
        assert not np.array_equal(ct1.c0.data, ct2.c0.data)


class TestAdditive:
    def test_add(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        out = toy_fhe.evaluator.add(toy_fhe.encrypt(za), toy_fhe.encrypt(zb))
        assert np.max(np.abs(toy_fhe.decrypt(out) - (za + zb))) < TOL

    def test_sub(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        out = toy_fhe.evaluator.sub(toy_fhe.encrypt(za), toy_fhe.encrypt(zb))
        assert np.max(np.abs(toy_fhe.decrypt(out) - (za - zb))) < TOL

    def test_negate(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        out = toy_fhe.evaluator.negate(toy_fhe.encrypt(z))
        assert np.max(np.abs(toy_fhe.decrypt(out) + z)) < TOL

    def test_add_aligns_levels(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        low = toy_fhe.encrypt(za, level=1)
        high = toy_fhe.encrypt(zb)
        out = toy_fhe.evaluator.add(low, high)
        assert out.level == 1
        assert np.max(np.abs(toy_fhe.decrypt(out) - (za + zb))) < TOL

    def test_add_const(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        out = toy_fhe.evaluator.add_const(toy_fhe.encrypt(z), 1.25)
        assert np.max(np.abs(toy_fhe.decrypt(out) - (z + 1.25))) < TOL

    def test_scale_mismatch_rejected(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        other = toy_fhe.encrypt(z, scale=2.0 ** 20)
        with pytest.raises(ValueError):
            toy_fhe.evaluator.add(ct, other)


class TestMultiplicative:
    def test_ciphertext_multiply(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        ev = toy_fhe.evaluator
        out = ev.rescale(
            ev.multiply(toy_fhe.encrypt(za), toy_fhe.encrypt(zb),
                        toy_fhe.relin_key)
        )
        assert np.max(np.abs(toy_fhe.decrypt(out) - za * zb)) < TOL
        assert out.level == toy_fhe.context.max_level - 1

    def test_square(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ev = toy_fhe.evaluator
        out = ev.rescale(ev.square(toy_fhe.encrypt(z), toy_fhe.relin_key))
        assert np.max(np.abs(toy_fhe.decrypt(out) - z * z)) < TOL

    def test_multiply_plain(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        w = toy_fhe.random_vector(rng)
        ev = toy_fhe.evaluator
        pt = ev.encode(w)
        out = ev.rescale(ev.multiply_plain(toy_fhe.encrypt(z), pt))
        assert np.max(np.abs(toy_fhe.decrypt(out) - z * w)) < TOL

    def test_multiply_const_complex(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ev = toy_fhe.evaluator
        out = ev.rescale(ev.multiply_const(toy_fhe.encrypt(z), 1j))
        assert np.max(np.abs(toy_fhe.decrypt(out) - 1j * z)) < TOL

    def test_depth_chain(self, toy_fhe, rng):
        """Multiply down the whole level budget: (z^2)^2 at 4 levels."""
        z = rng.uniform(0.2, 0.8, toy_fhe.params.slot_count)
        ev = toy_fhe.evaluator
        ct = toy_fhe.encrypt(z)
        for _ in range(2):
            ct = ev.rescale(ev.square(ct, toy_fhe.relin_key))
        assert np.max(np.abs(toy_fhe.decrypt(ct) - z ** 4)) < TOL

    def test_multiply_and_rescale_helper(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        ev = toy_fhe.evaluator
        out = ev.multiply_and_rescale(
            toy_fhe.encrypt(za), toy_fhe.encrypt(zb), toy_fhe.relin_key
        )
        assert np.max(np.abs(toy_fhe.decrypt(out) - za * zb)) < TOL


class TestRescaleAndLevels:
    def test_rescale_updates_scale_and_level(self, toy_fhe, rng):
        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng))
        ev = toy_fhe.evaluator
        prod = ev.multiply_const(ct, 2.0)
        dropped_q = toy_fhe.context.rns.moduli[prod.basis[-1]]
        rescaled = ev.rescale(prod)
        assert rescaled.level == ct.level - 1
        assert abs(rescaled.scale - prod.scale / dropped_q) < 1e-3

    def test_drop_to_level_preserves_value(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        low = toy_fhe.evaluator.drop_to_level(ct, 1)
        assert low.level == 1
        assert np.max(np.abs(toy_fhe.decrypt(low) - z)) < TOL

    def test_drop_to_non_subbasis_rejected(self, toy_fhe, rng):
        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng))
        with pytest.raises(ValueError):
            toy_fhe.evaluator.drop_to_basis(ct, (99,))


class TestCiphertextInvariants:
    def test_component_basis_mismatch_rejected(self, toy_fhe, rng):
        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng))
        with pytest.raises(ValueError):
            Ciphertext(c0=ct.c0, c1=ct.c1.keep_basis((0, 1)), scale=ct.scale)
