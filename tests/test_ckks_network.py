"""Tests for the composable encrypted-network layers."""

import numpy as np
import pytest

from repro.ckks.network import (
    ActivationLayer,
    ConvLayer,
    DenseLayer,
    EncryptedNetwork,
    PoolLayer,
)


@pytest.fixture(scope="module")
def small_net(deep_fhe):
    rng = np.random.default_rng(11)
    h = w = 8
    net = EncryptedNetwork([
        ConvLayer(0.3 * rng.normal(size=(3, 3)), h, w, bias=0.05),
        ActivationLayer(degree=3, bound=1.5),
        PoolLayer(3, h, w),
        DenseLayer(0.3 * rng.normal(size=(8, h * w))),
    ])
    net.bind(deep_fhe.context)
    return net


class TestEncryptedNetwork:
    def test_level_accounting(self, small_net):
        # conv 1 + activation (deg 3 -> 2) + pool 1 + dense 1 = 5.
        assert small_net.required_levels() == 5

    def test_forward_matches_plaintext(self, deep_fhe, small_net, rng):
        keys = small_net.create_keys(deep_fhe.keygen)
        x = rng.normal(scale=0.4, size=64)
        ct = deep_fhe.encrypt(x)
        out = small_net.apply(ct, deep_fhe.evaluator, keys)
        got = deep_fhe.decrypt(out).real[:8]
        want = small_net.reference(x)[:8]
        assert np.max(np.abs(got - want)) < 0.05

    def test_insufficient_levels_rejected(self, deep_fhe, small_net, rng):
        keys = small_net.create_keys(deep_fhe.keygen)
        shallow = deep_fhe.evaluator.drop_to_level(
            deep_fhe.encrypt(rng.normal(size=64)), 2
        )
        with pytest.raises(ValueError, match="levels"):
            small_net.apply(shallow, deep_fhe.evaluator, keys)

    def test_unbound_network_rejected(self, deep_fhe, rng):
        net = EncryptedNetwork([ActivationLayer(degree=3)])
        with pytest.raises(RuntimeError):
            net.create_keys(deep_fhe.keygen)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            EncryptedNetwork([])

    def test_key_material_is_minimal(self, deep_fhe, small_net):
        """Only the rotations the layers actually need get keys."""
        keys = small_net.create_keys(deep_fhe.keygen)
        needed = set()
        for layer in small_net.layers:
            needed.update(layer.required_rotation_steps())
        expected = {deep_fhe.context.galois_element_for_step(s)
                    for s in needed}
        assert set(keys.galois_keys.keys) == expected


class TestLayerReferences:
    def test_activation_reference(self):
        layer = ActivationLayer(coefficients=[0.0, 1.0, 0.5])
        x = np.array([0.5, -0.5])
        assert np.allclose(layer.reference(x), x + 0.5 * x ** 2)

    def test_dense_reference_pads(self):
        layer = DenseLayer(np.eye(2, 4))
        out = layer.reference(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.allclose(out, [1.0, 2.0])
