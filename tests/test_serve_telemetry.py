"""Streaming-telemetry tests for the serving layer.

Pins the ISSUE's acceptance properties: streamed quantiles stay within
the documented error bound of the exact report, engine memory stays
bounded however long the horizon, ``--telemetry-out`` lands the three
artifacts, and ``--backend`` participates in the planning fingerprint.
"""

import json

import pytest

from repro.obs import FlightRecorder
from repro.serve import (
    ServiceProfile,
    Scenario,
    TenantSpec,
    serve_prom_text,
    simulate_fleet,
    write_telemetry,
)
from repro.serve.engine import SimDriver, prepare_profiles
from repro.serve.report import build_report
from repro.serve.scenario import BatchConfig, Overheads, TelemetryConfig


def _profile(cluster_name, compute_seconds=2.0, model="resnet18"):
    return ServiceProfile(
        model=model, params="paper", cluster_name=cluster_name,
        compute_seconds=compute_seconds, ciphertext_bytes=1e6,
        io_bandwidth=16e9, cache_hit=False,
    )


def _scenario(**kw):
    kw.setdefault("name", "unit")
    kw.setdefault("duration_seconds", 40.0)
    kw.setdefault("seed", 5)
    kw.setdefault("tenants", (
        TenantSpec(name="t0", model="resnet18", process="poisson",
                   rate_rps=0.5, deadline_seconds=30.0),
    ))
    kw.setdefault("fleets", {"f": ("Hydra-S",)})
    kw.setdefault("batch", BatchConfig(max_requests=4, window_seconds=1.0))
    kw.setdefault("overheads", Overheads(batch_setup_seconds=0.0))
    return Scenario(**kw)


def _profiles_for(scenario):
    profiles = {}
    for entries in scenario.fleets.values():
        for entry in entries:
            for tenant in scenario.tenants:
                key = (tenant.model, tenant.params, entry)
                profiles[key] = _profile(entry, model=tenant.model)
    return profiles


def _long_scenario(rate_rps=40.0, duration=2000.0):
    """High-rate scenario: tens of thousands of requests, tiny windows."""
    return _scenario(
        duration_seconds=duration,
        tenants=(
            TenantSpec(name="hot", model="resnet18", process="poisson",
                       rate_rps=rate_rps, deadline_seconds=4.0,
                       slo_budget=0.01),
            TenantSpec(name="warm", model="resnet18", process="uniform",
                       rate_rps=rate_rps / 4),
        ),
        max_queue=64,
        batch=BatchConfig(max_requests=8, window_seconds=0.1),
        telemetry=TelemetryConfig(num_windows=24, recorder_events=128),
    )


class TestStreamedAccuracy:
    def test_streamed_quantiles_within_documented_bound(self):
        scenario = _long_scenario()
        profiles = _profiles_for(scenario)
        streamed = simulate_fleet(scenario, "f", profiles)
        exact = simulate_fleet(scenario, "f", profiles, exact=True)
        bound = build_report(scenario, ["f"],
                             {"f": streamed})["telemetry"]
        assert bound["mode"] == "streaming"
        for name in streamed["tenants"]:
            s = streamed["tenants"][name]["latency_seconds"]
            e = exact["tenants"][name]["latency_seconds"]
            assert s["count"] == e["count"] > 1000
            assert s["mean"] == pytest.approx(e["mean"])
            assert s["max"] == e["max"]
            for q in ("p50", "p95", "p99"):
                assert s[q] == pytest.approx(
                    e[q], rel=bound["relative_accuracy"]), (
                    f"{name} {q}: streamed {s[q]} vs exact {e[q]}"
                )

    def test_exact_and_streamed_agree_on_counts(self):
        scenario = _scenario()
        profiles = _profiles_for(scenario)
        streamed = simulate_fleet(scenario, "f", profiles)
        exact = simulate_fleet(scenario, "f", profiles, exact=True)
        for name in streamed["tenants"]:
            for key in ("arrivals", "completed", "rejected",
                        "deadline_misses"):
                assert (streamed["tenants"][name][key]
                        == exact["tenants"][name][key])
        # Small sample: the sketch is still in its exact regime, so
        # even the quantiles agree to the bit.
        assert streamed["tenants"]["t0"] == exact["tenants"]["t0"]

    def test_exact_mode_adds_depth_series(self):
        scenario = _scenario()
        profiles = _profiles_for(scenario)
        assert "series" not in simulate_fleet(scenario, "f",
                                              profiles)["queue"]
        series = simulate_fleet(scenario, "f", profiles,
                                exact=True)["queue"]["series"]
        assert series and series[0] == [0.0, 0]


class TestBoundedMemory:
    def test_engine_state_independent_of_horizon(self):
        # ~90k requests; every resident aggregate must stay at its
        # configured size — sketch buckets, windows, ring, heap.
        scenario = _long_scenario()
        driver = SimDriver(scenario, "f", _profiles_for(scenario))
        engine = driver.run()
        telemetry = scenario.telemetry
        total_arrivals = sum(s.arrivals for s in engine.stats.values())
        assert total_arrivals > 80000
        for stats in engine.stats.values():
            assert not stats.latency.is_exact
            # DDSketch bound: latencies span < 4 decades at 1% accuracy.
            assert stats.latency.bucket_count < 1000
            assert stats.latency._values == []
            assert len(stats.arrivals_w.counts()) == telemetry.num_windows
        assert engine.depth_series is None
        assert len(engine.recorder) <= telemetry.recorder_events
        assert engine.recorder.dropped > 0
        for stats in engine.cluster_stats:
            assert stats.io_union.active_count <= 4
        assert driver.heap == []  # fully drained, never the horizon

    def test_recorder_keeps_the_tail_and_first_trigger(self):
        scenario = _long_scenario()
        recorder = FlightRecorder(capacity=64)
        simulate_fleet(scenario, "f", _profiles_for(scenario),
                       recorder=recorder)
        events = recorder.events()
        assert len(events) == 64
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert seqs[-1] == recorder.total_recorded - 1
        # The overloaded "hot" tenant must have burned its 1% budget.
        assert recorder.first_trigger is not None
        assert recorder.first_trigger[0] == "slo_budget_exceeded"


class TestTelemetryExport:
    def _report_and_recorders(self, scenario):
        profiles = _profiles_for(scenario)
        recorder = FlightRecorder(scenario.telemetry.recorder_events)
        fleet = simulate_fleet(scenario, "f", profiles, recorder=recorder)
        report = build_report(scenario, ["f"], {"f": fleet})
        return report, {"f": recorder}

    def test_write_telemetry_lands_three_artifacts(self, tmp_path):
        report, recorders = self._report_and_recorders(_scenario())
        paths = write_telemetry(report, recorders, tmp_path / "out")
        names = [p.name for p in paths]
        assert names == ["report.json", "metrics.prom", "events.jsonl"]
        on_disk = json.loads(paths[0].read_text())
        assert on_disk == json.loads(json.dumps(report))
        prom = paths[1].read_text()
        assert "# TYPE repro_serve_arrivals counter" in prom
        assert "# TYPE repro_serve_latency_seconds summary" in prom
        assert 'quantile="0.99"' in prom
        for line in paths[2].read_text().splitlines():
            event = json.loads(line)
            assert event["fleet"] == "f"
            assert {"seq", "time", "kind"} <= set(event)

    def test_prom_text_is_deterministic(self):
        scenario = _scenario()
        a, _ = self._report_and_recorders(scenario)
        b, _ = self._report_and_recorders(scenario)
        assert serve_prom_text(a) == serve_prom_text(b)

    def test_slo_burn_gauge_present(self):
        report, _ = self._report_and_recorders(_long_scenario())
        prom = serve_prom_text(report)
        assert "repro_serve_slo_burn_rate" in prom
        assert 'tenant="hot"' in prom


class TestBackendThreading:
    def test_prepare_profiles_threads_backend(self, monkeypatch):
        captured = []

        class _FakeResult:
            total_seconds = 1.0

        class _FakeRun:
            result = _FakeResult()
            cache_hit = False

        class _FakeOutcome(list):
            manifest = {"fake": True}

        import repro.runtime as runtime

        def fake_execute(requests, **_kw):
            captured.extend(requests)
            return _FakeOutcome(_FakeRun() for _ in requests)

        monkeypatch.setattr(runtime, "execute", fake_execute)
        scenario = _scenario()
        profiles, manifest = prepare_profiles(scenario, backend="numba")
        assert profiles and manifest == {"fake": True}
        assert captured and all(r.backend == "numba" for r in captured)

    def test_backend_changes_the_cache_key(self):
        from repro.runtime import RunRequest

        keys = {
            RunRequest(benchmark="resnet18", system="Hydra-S",
                       with_energy=False, backend=name).key()
            for name in ("numpy", "numba")
        }
        assert len(keys) == 2
