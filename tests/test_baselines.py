"""Unit tests for the baseline accelerator definitions."""

import pytest

from repro.baselines import (
    ASIC_ACCELERATORS,
    FAB_L,
    FAB_M,
    FAB_S,
    POSEIDON,
    asic_edap,
    asic_runtime,
    fab_planner,
    poseidon_planner,
)


class TestFabBaseline:
    def test_published_sizes(self):
        assert FAB_S.total_cards == 1
        assert FAB_M.total_cards == 8
        assert FAB_L.total_cards == 64

    def test_fab_uses_host_fabric(self):
        assert FAB_M.fabric == "fab-host"
        assert FAB_L.fabric == "fab-host"

    def test_fab_planner_comm_bandwidth_is_lan_bound(self):
        p = fab_planner(8)
        assert p.comm_bandwidth == pytest.approx(1.25e9)

    def test_fab_card_slower_than_hydra(self):
        from repro.cost import CONVBN_UNIT, OpCostModel
        from repro.hw import HYDRA_CARD
        fab = OpCostModel(FAB_M.card).bundle_time(CONVBN_UNIT, 20)
        hydra = OpCostModel(HYDRA_CARD).bundle_time(CONVBN_UNIT, 20)
        assert fab > 2 * hydra


class TestPoseidonBaseline:
    def test_single_card_only(self):
        assert POSEIDON.total_cards == 1
        assert POSEIDON.fabric == "none"

    def test_planner_builds(self):
        p = poseidon_planner()
        assert p.cluster is POSEIDON


class TestAsicReferences:
    def test_four_asics(self):
        assert set(ASIC_ACCELERATORS) == {"CraterLake", "BTS", "ARK",
                                          "SHARP"}

    def test_sharp_is_fastest_asic(self):
        for bench in ("resnet18", "resnet50", "bert_base", "opt_6_7b"):
            sharp = asic_runtime("SHARP", bench)
            for other in ("CraterLake", "BTS", "ARK"):
                assert sharp < asic_runtime(other, bench)

    def test_runtime_and_edap_orderings_differ(self):
        # BTS is slowest AND least efficient.
        assert asic_runtime("BTS", "resnet18") > \
            asic_runtime("CraterLake", "resnet18")
        assert asic_edap("BTS", "resnet18") > \
            asic_edap("CraterLake", "resnet18")

    def test_unknown_keys_raise(self):
        with pytest.raises(KeyError):
            asic_runtime("F1", "resnet18")
        with pytest.raises(KeyError):
            asic_edap("SHARP", "vgg16")
