"""Byte-level determinism of the serving SLO report.

The contract: a scenario + seed fully determines the JSON report.
Planning parallelism (``--jobs``), process restarts, and runtime-cache
hits may change wall-clock provenance (which lives in the run manifest,
never the report) but not a single report byte.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.cli import main as cli_main

_ARGS = ["serve", "steady_hydra_m", "--duration", "40", "--json",
         "--validate"]


def _run_cli(tmp_path, tag, extra, cache_dir):
    out_path = tmp_path / f"report-{tag}.json"
    env = dict(os.environ,
               PYTHONPATH="src",
               REPRO_CACHE_DIR=str(cache_dir))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *_ARGS,
         "--out", str(out_path), *extra],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return out_path.read_bytes()


def test_report_bytes_survive_jobs_and_restarts(tmp_path):
    cache_a = tmp_path / "cache-a"
    cache_b = tmp_path / "cache-b"
    # Cold serial run, cold parallel-planning run (separate caches so
    # both actually simulate), then a restart against the first cache
    # (pure cache-hit planning path).
    serial = _run_cli(tmp_path, "serial", [], cache_a)
    parallel = _run_cli(tmp_path, "jobs4", ["--jobs", "4"], cache_b)
    telem_dir = tmp_path / "telemetry"
    warm = _run_cli(tmp_path, "warm",
                    ["--telemetry-out", str(telem_dir)], cache_a)
    assert serial == parallel
    assert serial == warm
    report = json.loads(serial)
    assert report["schema"] == "repro.serve/v3"
    assert report["fleets"]["hydra-m"]["tenants"]
    # --telemetry-out landed the three artifacts alongside --out.
    exported = json.loads((telem_dir / "report.json").read_bytes())
    assert exported == report
    assert "# TYPE" in (telem_dir / "metrics.prom").read_text()
    events = (telem_dir / "events.jsonl").read_text().splitlines()
    assert events
    assert all(json.loads(line)["fleet"] == "hydra-m" for line in events)


def test_run_scenario_in_process_determinism():
    from repro.serve import run_scenario

    first, _ = run_scenario("steady_hydra_m", duration=40.0)
    second, _ = run_scenario("steady_hydra_m", duration=40.0)
    assert (json.dumps(first, sort_keys=True)
            == json.dumps(second, sort_keys=True))


def test_seed_changes_report():
    from repro.serve import run_scenario

    base, _ = run_scenario("steady_hydra_m", duration=40.0)
    reseeded, _ = run_scenario("steady_hydra_m", duration=40.0, seed=1)
    assert base["seed"] != reseeded["seed"]
    assert (base["fleets"]["hydra-m"]["tenants"]["cnn-interactive"]
            != reseeded["fleets"]["hydra-m"]["tenants"]["cnn-interactive"])


def test_cli_list_and_errors(capsys):
    lines = []
    assert cli_main(["serve", "--list"], out=lines.append) == 0
    assert any("steady_hydra_m" in line for line in lines)
    lines.clear()
    assert cli_main(["serve"], out=lines.append) == 2
    assert "required" in lines[0]
    lines.clear()
    assert cli_main(["serve", "no_such_scenario"], out=lines.append) == 2
    assert "error" in lines[0]


def test_schema_rejects_malformed_reports():
    from repro.serve import run_scenario, validate_serve_report

    report, _ = run_scenario("steady_hydra_m", duration=40.0)
    validate_serve_report(report)

    missing = json.loads(json.dumps(report))
    del missing["fleets"]["hydra-m"]["goodput_rps"]
    with pytest.raises(ValueError, match="goodput_rps"):
        validate_serve_report(missing)

    wrong_type = json.loads(json.dumps(report))
    wrong_type["seed"] = "2024"
    with pytest.raises(ValueError, match="seed"):
        validate_serve_report(wrong_type)

    extra = json.loads(json.dumps(report))
    extra["wall_clock_seconds"] = 1.23
    with pytest.raises(ValueError, match="wall_clock_seconds"):
        validate_serve_report(extra)
