"""Tests for CKKS serialization (the client/server wire format)."""

import io

import numpy as np
import pytest

from repro.ckks import Encryptor
from repro.ckks.serialize import (
    ciphertext_from_bytes,
    ciphertext_to_bytes,
    load_ciphertext,
    load_galois_keys,
    load_public_key,
    params_from_json,
    params_to_json,
    save_ciphertext,
    save_galois_keys,
    save_public_key,
)


class TestParams:
    def test_round_trip(self, toy_fhe):
        text = params_to_json(toy_fhe.params)
        back = params_from_json(text)
        assert back == toy_fhe.params

    def test_sparse_secret_survives(self, boot_fhe):
        back = params_from_json(params_to_json(boot_fhe.params))
        assert back.secret_hamming_weight == 4


class TestCiphertext:
    def test_file_round_trip(self, toy_fhe, rng, tmp_path):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        path = tmp_path / "ct.npz"
        save_ciphertext(path, ct)
        back = load_ciphertext(path, toy_fhe.context)
        assert back.scale == ct.scale
        assert back.basis == ct.basis
        assert np.max(np.abs(toy_fhe.decrypt(back) - z)) < 5e-3

    def test_bytes_round_trip(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        blob = ciphertext_to_bytes(ct)
        assert isinstance(blob, bytes) and len(blob) > 1000
        back = ciphertext_from_bytes(blob, toy_fhe.context)
        assert np.array_equal(back.c0.data, ct.c0.data)

    def test_low_level_ciphertext(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.evaluator.drop_to_level(toy_fhe.encrypt(z), 1)
        back = ciphertext_from_bytes(ciphertext_to_bytes(ct),
                                     toy_fhe.context)
        assert back.level == 1

    def test_serialized_ciphertext_still_computes(self, toy_fhe, rng):
        """The server can operate on a deserialized ciphertext."""
        z = toy_fhe.random_vector(rng)
        blob = ciphertext_to_bytes(toy_fhe.encrypt(z))
        ct = ciphertext_from_bytes(blob, toy_fhe.context)
        out = toy_fhe.evaluator.rescale(
            toy_fhe.evaluator.multiply_const(ct, 2.0)
        )
        assert np.max(np.abs(toy_fhe.decrypt(out) - 2 * z)) < 5e-3


class TestKeys:
    def test_public_key_round_trip(self, toy_fhe, rng, tmp_path):
        path = tmp_path / "pk.npz"
        save_public_key(path, toy_fhe.public_key)
        pk = load_public_key(path, toy_fhe.context)
        # A fresh encryptor built from the loaded key must decrypt.
        enc = Encryptor(toy_fhe.context, pk, seed=99)
        z = toy_fhe.random_vector(rng)
        ct = enc.encrypt_values(z)
        assert np.max(np.abs(toy_fhe.decrypt(ct) - z)) < 5e-3

    def test_galois_keys_round_trip(self, toy_fhe, rng, tmp_path):
        path = tmp_path / "gk.npz"
        save_galois_keys(path, toy_fhe.galois_keys)
        gk = load_galois_keys(path, toy_fhe.context)
        assert set(gk.keys) == set(toy_fhe.galois_keys.keys)
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        out = toy_fhe.evaluator.rotate(ct, 1, gk)
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.roll(z, -1))) < 5e-3

    def test_in_memory_buffer(self, toy_fhe):
        buf = io.BytesIO()
        save_public_key(buf, toy_fhe.public_key)
        buf.seek(0)
        pk = load_public_key(buf, toy_fhe.context)
        assert pk.b.basis == toy_fhe.public_key.b.basis


class TestCrossContext:
    def test_server_rebuilds_context_from_params(self, toy_fhe, rng):
        """A second party reconstructs the ring from serialized params
        and can compute on wire ciphertexts with wire-free keys."""
        from repro.ckks import CkksContext, Evaluator
        server_ctx = CkksContext(
            params_from_json(params_to_json(toy_fhe.params))
        )
        z = toy_fhe.random_vector(rng)
        blob = ciphertext_to_bytes(toy_fhe.encrypt(z))
        ct = ciphertext_from_bytes(blob, server_ctx)
        server_ev = Evaluator(server_ctx)
        out = server_ev.rotate(ct, 1, toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.roll(z, -1))) \
            < 5e-3

    def test_different_rings_rejected(self, toy_fhe, deep_fhe, rng):
        ct_small = deep_fhe.encrypt(rng.normal(size=4))
        ct_big = toy_fhe.encrypt(rng.normal(size=4))
        with pytest.raises(ValueError):
            ct_big.c0.add(ct_small.c0)
