"""Remaining coverage: run cache semantics and graph utility methods."""

import pytest

from repro.core import (
    HydraSystem,
    available_benchmarks,
    available_systems,
)
from repro.models import ModelGraph, Step, resnet18
from repro.runtime import default_cache


class TestRunCache:
    def test_clear_default_cache(self):
        sys_m = HydraSystem.hydra_s()
        first = sys_m.run("resnet18", with_energy=False)
        default_cache().clear()
        second = sys_m.run("resnet18", with_energy=False)
        assert second is not first
        assert second.total_seconds == pytest.approx(first.total_seconds)

    def test_cache_bypass(self):
        sys_m = HydraSystem.hydra_s()
        cached = sys_m.run("resnet18", with_energy=False)
        fresh = sys_m.run("resnet18", with_energy=False, use_cache=False)
        assert fresh is not cached

    def test_energy_flag_is_part_of_key(self):
        sys_m = HydraSystem.hydra_s()
        with_e = sys_m.run("resnet18", with_energy=True)
        without = sys_m.run("resnet18", with_energy=False)
        assert with_e is not without
        assert with_e.energy is not None
        assert without.energy is None

    def test_model_graph_objects_accepted(self):
        model = resnet18()
        result = HydraSystem.hydra_s().run(model, with_energy=False)
        assert result.model_name == "resnet18"


class TestRegistries:
    def test_benchmarks_sorted(self):
        names = available_benchmarks()
        assert names == sorted(names)

    def test_systems_include_baselines(self):
        names = available_systems()
        for required in ("Hydra-S", "Hydra-M", "Hydra-L", "FAB-M",
                         "Poseidon"):
            assert required in names


class TestGraphUtilities:
    def test_procedures_listing(self):
        g = ModelGraph(name="g", display_name="G")
        g.add(Step(kind="convbn", name="a", procedure="ConvBN", level=5,
                   units=4))
        g.add(Step(kind="bootstrap", name="b", procedure="Boot", level=9,
                   jobs=1))
        assert g.procedures == ["Boot", "ConvBN"]

    def test_parallelism_range_missing_kind(self):
        g = ModelGraph(name="g", display_name="G")
        assert g.parallelism_range("pcmm") is None

    def test_step_flags(self):
        conv = Step(kind="convbn", name="c", procedure="C", level=5,
                    units=4)
        relu = Step(kind="nonlinear", name="r", procedure="R", level=5,
                    jobs=2, degree=3)
        boot = Step(kind="bootstrap", name="b", procedure="B", level=9,
                    jobs=1)
        assert conv.is_unit_parallel and not conv.is_polynomial
        assert relu.is_polynomial and not relu.is_unit_parallel
        assert not boot.is_unit_parallel and not boot.is_polynomial

    def test_unit_work_validation(self):
        with pytest.raises(ValueError):
            Step(kind="convbn", name="c", procedure="C", level=5,
                 units=4, unit_work=0.0)
