"""Unit tests for polynomial approximations of DL non-linearities."""

import math

import numpy as np
import pytest

from repro.ckks.approx import (
    chebyshev_fit,
    exp_coefficients,
    gelu_coefficients,
    inverse_sqrt_coefficients,
    relu_coefficients,
    sigmoid_coefficients,
)


def _poly_eval(coeffs, x):
    return sum(c * x ** k for k, c in enumerate(coeffs))


class TestChebyshevFit:
    def test_recovers_polynomial_exactly(self):
        coeffs = chebyshev_fit(lambda x: 1 + 2 * x + 3 * x ** 2, 4)
        assert np.allclose(coeffs[:3], [1, 2, 3], atol=1e-9)
        assert np.allclose(coeffs[3:], 0, atol=1e-9)

    def test_nonunit_interval(self):
        coeffs = chebyshev_fit(math.sin, 9, (-3.0, 3.0))
        xs = np.linspace(-3, 3, 101)
        err = max(abs(_poly_eval(coeffs, x) - math.sin(x)) for x in xs)
        assert err < 1e-3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chebyshev_fit(math.sin, 0)
        with pytest.raises(ValueError):
            chebyshev_fit(math.sin, 5, (1.0, 1.0))


class TestActivations:
    @pytest.mark.parametrize("factory,reference,interval", [
        (sigmoid_coefficients,
         lambda x: 1 / (1 + math.exp(-x)), (-6, 6)),
        (gelu_coefficients,
         lambda x: 0.5 * x * (1 + math.erf(x / math.sqrt(2))), (-3, 3)),
        (exp_coefficients, math.exp, (-1, 1)),
    ])
    def test_approximation_quality(self, factory, reference, interval):
        coeffs = factory()
        xs = np.linspace(interval[0], interval[1], 101)
        err = max(abs(_poly_eval(coeffs, x) - reference(x)) for x in xs)
        assert err < 0.05

    def test_relu_behaviour(self):
        coeffs = relu_coefficients(degree=9, bound=1.0)
        # Positive inputs pass nearly unchanged; negative die out.
        assert abs(_poly_eval(coeffs, 0.8) - 0.8) < 0.1
        assert abs(_poly_eval(coeffs, -0.8)) < 0.1

    def test_inverse_sqrt(self):
        coeffs = inverse_sqrt_coefficients(degree=9)
        for x in (0.3, 0.5, 1.0, 1.8):
            assert abs(_poly_eval(coeffs, x) - 1 / math.sqrt(x)) < 0.02

    def test_inverse_sqrt_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            inverse_sqrt_coefficients(7, (-1.0, 1.0))


class TestHomomorphicActivation:
    def test_gelu_on_encrypted_data(self, deep_fhe, rng):
        """Run a fitted GeLU through the real evaluator."""
        from repro.ckks import evaluate_polynomial
        coeffs = gelu_coefficients(degree=7, bound=2.0)
        x = rng.uniform(-2, 2, deep_fhe.params.slot_count)
        ct = deep_fhe.encrypt(x)
        out = evaluate_polynomial(ct, coeffs, deep_fhe.evaluator,
                                  deep_fhe.relin_key)
        got = deep_fhe.decrypt(out).real
        want = 0.5 * x * (1 + np.vectorize(math.erf)(x / math.sqrt(2)))
        # Polynomial approximation error + FHE noise.
        assert np.max(np.abs(got - want)) < 0.08
