"""Autoscaler tests: policies, hysteresis, lifecycle, and the pinned
flash-crowd acceptance property.

Unit tests drive :class:`~repro.serve.Autoscaler` and the elastic
:class:`~repro.serve.ClusterState` lifecycle directly; the acceptance
tests at the bottom plan real service profiles for the committed
``flash_crowd`` scenario once per module and pin the PR's headline
claim — the autoscaled heterogeneous fleet holds every tenant's p99
under its SLO using strictly fewer card-seconds than the
statically peak-provisioned fleet.
"""

import pytest

from repro.serve import (
    AutoscaleConfig,
    Autoscaler,
    RoutingConfig,
    Scenario,
    ServiceProfile,
    TenantSpec,
    make_autoscale_policy,
    prepare_profiles,
    select_cluster,
    simulate_fleet,
)
from repro.serve.dispatch import BatchSchedule, ClusterState
from repro.serve.scenario import (
    BatchConfig,
    Overheads,
    load_scenario,
    resolve_fleet_cluster,
)


def _config(**kw):
    kw.setdefault("policy", "queue_depth")
    kw.setdefault("evaluation_interval_seconds", 5.0)
    kw.setdefault("hysteresis_seconds", 30.0)
    kw.setdefault("up_threshold", 8.0)
    kw.setdefault("down_threshold", 0.0)
    return AutoscaleConfig(**kw)


def _slo_tenant(name="slo", deadline=10.0, budget=0.1):
    return TenantSpec(name=name, model="resnet18", process="uniform",
                      rate_rps=1.0, deadline_seconds=deadline,
                      slo_budget=budget)


class TestConfig:
    def test_thresholds_must_form_a_band(self):
        with pytest.raises(ValueError, match="strictly below"):
            _config(up_threshold=2.0, down_threshold=2.0)

    def test_replica_band_validated(self):
        with pytest.raises(ValueError, match="max_replicas"):
            _config(min_replicas=5, max_replicas=4)
        with pytest.raises(ValueError, match="min_replicas"):
            _config(min_replicas=-1)

    def test_round_trip(self):
        config = _config(policy="burn_rate", up_threshold=1.5,
                         down_threshold=0.25, fleets=("elastic",))
        assert AutoscaleConfig.from_dict(config.to_dict()) == config

    def test_fleet_scoping(self):
        assert _config().applies_to("anything")
        scoped = _config(fleets=("elastic",))
        assert scoped.applies_to("elastic")
        assert not scoped.applies_to("static-peak")

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown autoscale policy"):
            _config(policy="predictive")
        with pytest.raises(KeyError, match="unknown autoscale policy"):
            make_autoscale_policy("predictive")


class TestPolicies:
    def test_queue_depth_directions(self):
        scaler = Autoscaler(_config(up_threshold=8.0, down_threshold=0.0,
                                    scale_up_step=2), [_slo_tenant()])
        delta, signal = scaler.evaluate(5.0, queue_depth=9,
                                        active_replicas=0)
        assert (delta, signal) == (2, 9.0)
        scaler.last_scale_time = None
        delta, _ = scaler.evaluate(10.0, queue_depth=3, active_replicas=1)
        assert delta == 0
        delta, _ = scaler.evaluate(15.0, queue_depth=0, active_replicas=1)
        assert delta == -1

    def test_burn_rate_tracks_windowed_p99_vs_deadline(self):
        tenant = _slo_tenant(deadline=10.0, budget=0.5)
        scaler = Autoscaler(_config(policy="burn_rate", up_threshold=0.8,
                                    down_threshold=0.1), [tenant])
        for latency in (9.0, 9.0, 9.5):
            scaler.observe_completion("slo", latency, missed=False)
        delta, signal = scaler.evaluate(5.0, queue_depth=1,
                                        active_replicas=0)
        # p99 ~ 9.5 s against a 10 s deadline: burn ~0.95 >= 0.8 -> up.
        assert delta == 1
        assert signal >= 0.9

    def test_burn_rate_tracks_miss_fraction_vs_budget(self):
        tenant = _slo_tenant(deadline=10.0, budget=0.1)
        scaler = Autoscaler(_config(policy="burn_rate", up_threshold=2.0,
                                    down_threshold=0.1), [tenant])
        for missed in (True, False, False, False):
            scaler.observe_completion("slo", 1.0, missed=missed)
        _, signal = scaler.evaluate(5.0, queue_depth=0,
                                    active_replicas=1)
        # miss fraction 0.25 over budget 0.1 -> burn 2.5.
        assert signal == pytest.approx(2.5)

    def test_burn_rate_never_shrinks_with_backlog(self):
        scaler = Autoscaler(_config(policy="burn_rate", up_threshold=1.0,
                                    down_threshold=0.2), [_slo_tenant()])
        delta, _ = scaler.evaluate(5.0, queue_depth=4, active_replicas=2)
        assert delta == 0  # quiet tail but non-empty queue: hold

    def test_windows_reset_between_evaluations(self):
        scaler = Autoscaler(_config(policy="burn_rate", up_threshold=5.0,
                                    down_threshold=0.1), [_slo_tenant()])
        scaler.observe_completion("slo", 9.0, missed=True)
        _, first = scaler.evaluate(5.0, 0, 1)
        scaler.last_scale_time = None
        _, second = scaler.evaluate(10.0, 0, 1)
        assert first > 0.0
        assert second == 0.0

    def test_non_slo_tenants_are_invisible(self):
        scaler = Autoscaler(_config(policy="burn_rate"),
                            [TenantSpec(name="batch", model="resnet18",
                                        process="uniform", rate_rps=1.0)])
        scaler.observe_completion("batch", 1e6, missed=False)
        _, signal = scaler.evaluate(5.0, 0, 1)
        assert signal == 0.0


class TestHysteresis:
    def test_votes_suppressed_inside_hold_window(self):
        scaler = Autoscaler(_config(hysteresis_seconds=30.0),
                            [_slo_tenant()])
        delta, _ = scaler.evaluate(5.0, queue_depth=20, active_replicas=0)
        assert delta == 1
        scaler.note_scaled(5.0)
        # Same screaming signal 10 s later: held.
        delta, _ = scaler.evaluate(15.0, queue_depth=40,
                                   active_replicas=1)
        assert delta == 0
        # Past the hold window the policy votes again.
        delta, _ = scaler.evaluate(36.0, queue_depth=40,
                                   active_replicas=1)
        assert delta == 1

    def test_hysteresis_keys_off_actions_not_votes(self):
        scaler = Autoscaler(_config(hysteresis_seconds=30.0),
                            [_slo_tenant()])
        delta, _ = scaler.evaluate(5.0, queue_depth=20, active_replicas=0)
        assert delta == 1
        # The engine could NOT apply it (already at max): no note_scaled,
        # so the next evaluation is not suppressed.
        delta, _ = scaler.evaluate(10.0, queue_depth=20,
                                   active_replicas=0)
        assert delta == 1


def _profile(cluster_name, compute_seconds, model="resnet18"):
    return ServiceProfile(
        model=model, params="paper", cluster_name=cluster_name,
        compute_seconds=compute_seconds, ciphertext_bytes=1e6,
        io_bandwidth=16e9, cache_hit=False,
    )


def _elastic_scenario(**kw):
    kw.setdefault("name", "unit-elastic")
    kw.setdefault("duration_seconds", 120.0)
    kw.setdefault("seed", 5)
    kw.setdefault("tenants", (
        TenantSpec(name="t0", model="resnet18", process="uniform",
                   rate_rps=0.5, deadline_seconds=30.0),
    ))
    kw.setdefault("fleets", {"f": ("Hydra-S",)})
    kw.setdefault("batch", BatchConfig(max_requests=1,
                                       window_seconds=0.0))
    kw.setdefault("overheads", Overheads(batch_setup_seconds=0.0))
    return Scenario(**kw)


class TestEngineIntegration:
    def test_constant_moderate_load_never_flaps(self):
        # Service keeps up with arrivals: depth never reaches the up
        # threshold, and min_replicas floors the pool, so a full run
        # produces ZERO scale events — hysteresis plus thresholds must
        # not oscillate on a flat workload.
        scenario = _elastic_scenario(
            autoscale=AutoscaleConfig(
                policy="queue_depth", cluster="Hydra-S",
                min_replicas=1, max_replicas=3,
                evaluation_interval_seconds=5.0, warmup_seconds=5.0,
                hysteresis_seconds=10.0, up_threshold=8.0,
                down_threshold=0.0),
        )
        profiles = {("resnet18", "paper", "Hydra-S"):
                    _profile("Hydra-S", compute_seconds=1.0)}
        report = simulate_fleet(scenario, "f", profiles)
        autoscale = report["autoscale"]
        assert autoscale["scale_ups"] == 0
        assert autoscale["scale_downs"] == 0
        assert autoscale["final_replicas"] == 1
        assert autoscale["evaluations"] >= 20

    def test_overload_scales_up_and_drains(self):
        # Static Hydra-S alone is 4x oversubscribed; elastic replicas
        # must come up, absorb the backlog, and retire afterwards.
        scenario = _elastic_scenario(
            duration_seconds=200.0,
            tenants=(TenantSpec(name="t0", model="resnet18",
                                process="flash", rate_rps=0.25,
                                deadline_seconds=60.0, slo_budget=0.5,
                                arrival_extra=(
                                    ("spike_duration_seconds", 60.0),
                                    ("spike_multiplier", 8.0),
                                    ("spike_start_seconds", 40.0),
                                )),),
            autoscale=AutoscaleConfig(
                policy="queue_depth", cluster="Hydra-S",
                min_replicas=0, max_replicas=3,
                evaluation_interval_seconds=5.0, warmup_seconds=5.0,
                hysteresis_seconds=10.0, up_threshold=3.0,
                down_threshold=0.0),
        )
        profiles = {("resnet18", "paper", "Hydra-S"):
                    _profile("Hydra-S", compute_seconds=2.0)}
        report = simulate_fleet(scenario, "f", profiles)
        autoscale = report["autoscale"]
        assert autoscale["scale_ups"] >= 1
        assert autoscale["scale_downs"] >= 1
        assert autoscale["peak_replicas"] >= 1
        assert autoscale["final_replicas"] == 0
        # Consecutive scale actions respect the hysteresis hold.
        times = [e["time"] for e in autoscale["events"]]
        assert all(b - a >= 10.0 - 1e-9
                   for a, b in zip(times, times[1:]))
        # Card-seconds are billed only over elastic active spans.
        elastic = [c for c in report["clusters"] if c["elastic"]]
        assert elastic
        for cluster in elastic:
            assert cluster["card_seconds"] < report["makespan_seconds"]

    def test_report_splits_static_and_elastic_cost(self):
        scenario = _elastic_scenario(
            autoscale=AutoscaleConfig(
                policy="queue_depth", cluster="Hydra-S",
                min_replicas=1, max_replicas=2,
                evaluation_interval_seconds=5.0,
                hysteresis_seconds=10.0,
                up_threshold=8.0, down_threshold=0.0),
        )
        profiles = {("resnet18", "paper", "Hydra-S"):
                    _profile("Hydra-S", compute_seconds=1.0)}
        report = simulate_fleet(scenario, "f", profiles)
        cost = report["card_seconds"]
        assert cost["total"] == pytest.approx(cost["static"]
                                              + cost["elastic"])
        assert cost["static"] > 0
        assert cost["elastic"] > 0  # the min_replicas floor runs always


class TestElasticLifecycle:
    def _cluster(self, **kw):
        _, spec = resolve_fleet_cluster("Hydra-S")
        kw.setdefault("index", 0)
        kw.setdefault("name", "Hydra-S")
        kw.setdefault("replica", 0)
        kw.setdefault("spec", spec)
        kw.setdefault("mode", "pipelined")
        return ClusterState(**kw)

    def test_warming_replica_is_not_dispatchable(self):
        cluster = self._cluster(active_from=50.0, elastic=True)
        assert not cluster.available(49.0)
        assert cluster.available(50.0)
        assert cluster.compute_free_at == 50.0

    def test_retired_replica_bills_until_drain(self):
        cluster = self._cluster(elastic=True)
        schedule = cluster.plan_batch(0.0, t_in=1.0, t_compute=8.0,
                                      t_out=1.0)
        cluster.commit_batch(schedule, size=1)
        cluster.retire(5.0)
        assert not cluster.available(6.0)
        assert cluster.active_until(100.0) == pytest.approx(10.0)
        assert cluster.card_seconds(100.0) == pytest.approx(10.0)

    def test_never_activated_replica_bills_zero(self):
        cluster = self._cluster(active_from=80.0, elastic=True)
        cluster.retire(80.0)
        assert cluster.card_seconds(100.0) == 0.0


class TestSloRouting:
    def _plans(self):
        plans = []
        for i, (name, completion) in enumerate(
                [("Hydra-L", 5.0), ("Hydra-M", 12.0)]):
            _, spec = resolve_fleet_cluster(name)
            cluster = ClusterState(index=i, name=name, replica=0,
                                   spec=spec, mode="pipelined")
            schedule = BatchSchedule(
                ingress_start=0.0, ingress_end=1.0, compute_start=1.0,
                compute_end=completion - 1.0,
                egress_start=completion - 1.0, egress_end=completion)
            plans.append((schedule, cluster))
        return plans

    def test_greedy_takes_earliest_completion(self):
        _, cluster = select_cluster(self._plans(), RoutingConfig(), 20.0)
        assert cluster.name == "Hydra-L"

    def test_slo_takes_cheapest_feasible(self):
        routing = RoutingConfig(mode="slo")
        _, cluster = select_cluster(self._plans(), routing, 20.0)
        assert cluster.name == "Hydra-M"  # 8 cards beat 64, both make it

    def test_slo_safety_margin_disqualifies_tight_fits(self):
        routing = RoutingConfig(mode="slo", safety_margin_seconds=10.0)
        _, cluster = select_cluster(self._plans(), routing, 20.0)
        assert cluster.name == "Hydra-L"  # M finishes at 12 > 20 - 10

    def test_slo_without_deadline_falls_back_to_greedy(self):
        routing = RoutingConfig(mode="slo")
        _, cluster = select_cluster(self._plans(), routing, None)
        assert cluster.name == "Hydra-L"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown routing mode"):
            RoutingConfig(mode="fastest")


@pytest.fixture(scope="module")
def flash_scenario():
    # The committed scenario, untouched: the acceptance property below
    # is pinned on exactly what `repro serve flash_crowd` runs.
    return load_scenario("flash_crowd")


@pytest.fixture(scope="module")
def flash_reports(flash_scenario):
    profiles, _ = prepare_profiles(flash_scenario, jobs=4)
    return {fleet: simulate_fleet(flash_scenario, fleet, profiles)
            for fleet in flash_scenario.fleets}


class TestFlashCrowdAcceptance:
    """The PR's pinned acceptance property, on the committed scenario."""

    def test_elastic_holds_every_slo(self, flash_scenario, flash_reports):
        elastic = flash_reports["elastic"]
        for tenant in flash_scenario.tenants:
            if tenant.deadline_seconds is None:
                continue
            stats = elastic["tenants"][tenant.name]
            assert stats["latency_seconds"]["p99"] \
                <= tenant.deadline_seconds, (
                    f"{tenant.name}: autoscaled fleet must hold p99 "
                    f"under the {tenant.deadline_seconds} s deadline"
                )
            assert stats["slo"]["miss_fraction"] <= tenant.slo_budget
        assert elastic["queue"]["rejected"] == 0

    def test_elastic_costs_strictly_fewer_card_seconds(
            self, flash_reports):
        elastic = flash_reports["elastic"]["card_seconds"]["total"]
        static = flash_reports["static-peak"]["card_seconds"]["total"]
        assert elastic < static, (
            "autoscaling must beat static peak provisioning on "
            "card-seconds or the whole exercise is pointless"
        )

    def test_scale_up_fires_before_budget_exhausts(self, flash_reports):
        elastic = flash_reports["elastic"]
        autoscale = elastic["autoscale"]
        assert autoscale["scale_ups"] >= 1
        # The flight recorder latches the FIRST trigger: if the SLO
        # budget had burned out before the autoscaler reacted, the
        # latched reason would be slo_budget_exceeded.
        first = elastic["flight_recorder"]["first_trigger"]
        assert first is not None
        assert first["reason"] == "scale_up"
        for tenant in elastic["tenants"].values():
            if tenant["slo"] is not None:
                assert tenant["slo"]["burn_rate"] < 1.0

    def test_slo_routing_segregates_heavy_batches(self, flash_reports):
        # bert (no deadline) lands on the big Hydra-L; deadline-carrying
        # resnet traffic fills the elastic Hydra-M pool when it is up.
        clusters = {f"{c['name']}#{c['replica']}": c
                    for c in flash_reports["elastic"]["clusters"]}
        assert clusters["Hydra-L#0"]["requests"] > 0
        elastic_requests = sum(c["requests"] for c in clusters.values()
                               if c["elastic"])
        assert elastic_requests > 0
