"""Unit tests for the discrete-event engine and Procedure-1 semantics."""

import pytest

from repro.hw import fab_cluster, hydra_cluster
from repro.sim import (
    ProgramBuilder,
    RecvTask,
    SimulationError,
    Simulator,
)


def _cluster(n):
    return hydra_cluster(1, n)


class TestComputeOnly:
    def test_single_node_sequential(self):
        b = ProgramBuilder(1)
        b.compute(0, 1.0, tag="a")
        b.compute(0, 2.0, tag="b")
        res = Simulator(_cluster(1)).run(b.build())
        assert res.makespan == pytest.approx(3.0)
        assert res.tag_compute == {"a": 1.0, "b": 2.0}

    def test_parallel_nodes(self):
        b = ProgramBuilder(4)
        for n in range(4):
            b.compute(n, 1.0 + n)
        res = Simulator(_cluster(4)).run(b.build())
        assert res.makespan == pytest.approx(4.0)
        assert res.total_compute_busy == pytest.approx(1 + 2 + 3 + 4)

    def test_empty_programs(self):
        b = ProgramBuilder(2)
        res = Simulator(_cluster(2)).run(b.build())
        assert res.makespan == 0.0

    def test_zero_duration_tasks(self):
        b = ProgramBuilder(1)
        for _ in range(5):
            b.compute(0, 0.0)
        res = Simulator(_cluster(1)).run(b.build())
        assert res.makespan == 0.0
        assert res.nodes[0].tasks_executed == 5


class TestDependencies:
    def test_send_after_compute(self):
        """A transfer only starts once its producing task finished."""
        b = ProgramBuilder(2)
        idx = b.compute(0, 5.0)
        b.transfer(0, 1, 1e6, after=idx)
        b.compute(1, 1.0, needs_recv=True)
        res = Simulator(_cluster(2)).run(b.build())
        transfer_time = 1e6 / 12.5e9
        assert res.makespan == pytest.approx(6.0 + transfer_time, rel=0.01)

    def test_compute_after_receive_blocks(self):
        """CT_d waits; CT_i does not (paper Fig. 5 example)."""
        b = ProgramBuilder(2)
        idx = b.compute(0, 3.0)
        b.transfer(0, 1, 1000, after=idx)
        b.compute(1, 1.0)                    # CT_i, runs immediately
        b.compute(1, 1.0, needs_recv=True)   # CT_d, waits for the data
        res = Simulator(_cluster(2)).run(b.build())
        assert res.makespan == pytest.approx(4.0, abs=0.01)

    def test_recv_fifo_consumption(self):
        """Two CT_d tasks consume two receive completions in order."""
        b = ProgramBuilder(2)
        i1 = b.compute(0, 1.0)
        b.transfer(0, 1, 1000, after=i1)
        i2 = b.compute(0, 1.0)
        b.transfer(0, 1, 1000, after=i2)
        b.compute(1, 0.5, needs_recv=True)
        b.compute(1, 0.5, needs_recv=True)
        res = Simulator(_cluster(2)).run(b.build())
        assert res.makespan == pytest.approx(2.5, abs=0.01)

    def test_ping_pong(self):
        b = ProgramBuilder(2)
        i0 = b.compute(0, 1.0)
        b.transfer(0, 1, 1000, after=i0)
        i1 = b.compute(1, 1.0, needs_recv=True)
        b.transfer(1, 0, 1000, after=i1)
        b.compute(0, 1.0, needs_recv=True)
        res = Simulator(_cluster(2)).run(b.build())
        assert res.makespan == pytest.approx(3.0, abs=0.01)


class TestOverlap:
    def test_communication_hidden_behind_compute(self):
        """Per paper Section III-A: when chunk compute time exceeds
        transfer time, only the final broadcast is exposed."""
        n, rounds, dur, size = 4, 4, 10e-3, 1e6
        b = ProgramBuilder(n)
        idx = {}
        for node in range(n):
            idx[node] = [b.compute(node, dur) for _ in range(rounds)]
        for r in range(rounds):
            for node in range(n):
                b.broadcast(node, size, after=idx[node][r])
        res = Simulator(_cluster(n)).run(b.build())
        transfer = size / 12.5e9
        assert res.makespan < rounds * dur + n * transfer * 2 + 1e-3
        assert res.comm_overhead_fraction < 0.05

    def test_broadcast_counts_bytes_per_receiver(self):
        b = ProgramBuilder(3)
        i = b.compute(0, 0.1)
        b.broadcast(0, 1000, after=i)
        res = Simulator(_cluster(3)).run(b.build())
        assert res.bytes_transferred == pytest.approx(2000)
        assert res.transfers == 2

    def test_multicast_subset(self):
        b = ProgramBuilder(4)
        i = b.compute(0, 0.1)
        b.multicast(0, [1, 2], 1000, after=i)
        b.compute(1, 0.0, needs_recv=True)
        b.compute(2, 0.0, needs_recv=True)
        res = Simulator(_cluster(4)).run(b.build())
        assert res.transfers == 2


class TestFabrics:
    def test_fab_host_path_slower_than_switch(self):
        def program(n):
            b = ProgramBuilder(n)
            i = b.compute(0, 0.001)
            b.transfer(0, 3, 25e6, after=i)  # unpaired cards 0 -> 3
            b.compute(3, 0.0, needs_recv=True)
            return b.build()

        hydra = Simulator(_cluster(4)).run(program(4)).makespan
        fab = Simulator(fab_cluster(4)).run(program(4)).makespan
        assert fab > 5 * hydra

    def test_fab_paired_cards_are_fast(self):
        b = ProgramBuilder(4)
        i = b.compute(0, 0.001)
        b.transfer(0, 1, 25e6, after=i)  # cards 0,1 are a FAB pair
        b.compute(1, 0.0, needs_recv=True)
        res = Simulator(fab_cluster(4)).run(b.build())
        assert res.makespan < 0.01

    def test_single_card_transfer_is_error(self):
        b = ProgramBuilder(1)
        b.compute(0, 1.0)
        b.programs[0].comm.append(RecvTask(src=0, size=10))
        with pytest.raises((RuntimeError, SimulationError)):
            Simulator(hydra_cluster(1, 1)).run(b.build())

    def test_inter_server_latency_applies(self):
        two_servers = hydra_cluster(2, 2)
        b = ProgramBuilder(4)
        i = b.compute(0, 0.0)
        b.transfer(0, 3, 1000, after=i)  # card 3 is on server 1
        b.compute(3, 0.0, needs_recv=True)
        res = Simulator(two_servers).run(b.build())
        assert res.makespan >= two_servers.network.inter_server_latency


class TestErrors:
    def test_deadlock_detected(self):
        b = ProgramBuilder(2)
        b.programs[1].comm.append(RecvTask(src=0, size=100))
        with pytest.raises(SimulationError, match="deadlock"):
            Simulator(_cluster(2)).run(b.build())

    def test_program_count_mismatch(self):
        b = ProgramBuilder(2)
        with pytest.raises(SimulationError):
            Simulator(_cluster(4)).run(b.build())

    def test_bad_send_dependency_index(self):
        from repro.sim.program import SendTask
        b = ProgramBuilder(2)
        b.programs[0].comm.append(
            SendTask(dst=1, size=10, after_compute=5)
        )
        b.programs[1].comm.append(RecvTask(src=0, size=10))
        with pytest.raises(SimulationError):
            Simulator(_cluster(2)).run(b.build())


class TestProgramBuilder:
    def test_self_transfer_rejected(self):
        b = ProgramBuilder(2)
        with pytest.raises(ValueError):
            b.transfer(0, 0, 100)

    def test_broadcast_needs_two_nodes(self):
        b = ProgramBuilder(1)
        with pytest.raises(ValueError):
            b.broadcast(0, 100)

    def test_multicast_excludes_source(self):
        b = ProgramBuilder(3)
        with pytest.raises(ValueError):
            b.multicast(0, [0, 1], 100)

    def test_negative_duration_rejected(self):
        b = ProgramBuilder(1)
        with pytest.raises(ValueError):
            b.compute(0, -1.0)

    def test_node_range_checked(self):
        b = ProgramBuilder(2)
        with pytest.raises(ValueError):
            b.compute(2, 1.0)
