"""Result caches: stats, disk round-trip fidelity, invalidation, and
cross-process persistence of the JSON cache."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.hw import hydra_cluster
from repro.models import resnet18
from repro.runtime import (
    DiskCache,
    MemoryCache,
    RunRequest,
    SqlitePlanStore,
    default_cache,
    default_cache_dir,
    set_default_cache,
)
from repro.sched.planner import Planner

_SRC = str(Path(repro.__file__).resolve().parents[1])


def _small_result():
    return Planner(hydra_cluster(1, 2)).run_model(resnet18())


@pytest.fixture(scope="module")
def result():
    return _small_result()


class TestMemoryCache:
    def test_miss_then_hit_stats(self, result):
        cache = MemoryCache()
        assert cache.get("k") is None
        cache.put("k", result)
        assert cache.get("k") is result
        assert (cache.stats.misses, cache.stats.hits,
                cache.stats.puts) == (1, 1, 1)
        assert cache.stats.hit_rate == 0.5
        assert "k" in cache and len(cache) == 1

    def test_clear(self, result):
        cache = MemoryCache()
        cache.put("k", result)
        cache.clear()
        assert "k" not in cache and len(cache) == 0


class TestDiskCache:
    def test_roundtrip_is_exact(self, tmp_path, result):
        cache = DiskCache(tmp_path)
        cache.put("k", result)
        # A second instance must re-read from disk, not memory.
        loaded = DiskCache(tmp_path).get("k")
        assert loaded is not result
        assert loaded.total_seconds == result.total_seconds
        assert json.dumps(loaded.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )
        # Full structure survives: per-node stats, energy, components.
        assert loaded.sim.num_nodes == result.sim.num_nodes
        assert loaded.energy.total == result.energy.total
        assert (loaded.sim.components_total.to_dict()
                == result.sim.components_total.to_dict())

    def test_memory_layer_serves_same_object(self, tmp_path, result):
        cache = DiskCache(tmp_path)
        cache.put("k", result)
        assert cache.get("k") is cache.get("k")

    def test_corrupt_entry_is_a_miss(self, tmp_path, result):
        cache = DiskCache(tmp_path, memory=False)
        cache.put("k", result)
        (tmp_path / "k.json").write_text("{not json", encoding="utf-8")
        assert cache.get("k") is None

    def test_unknown_format_is_a_miss(self, tmp_path):
        (tmp_path / "k.json").write_text(
            json.dumps({"format": 999, "result": {}}), encoding="utf-8"
        )
        assert DiskCache(tmp_path, memory=False).get("k") is None

    def test_clear_removes_entries(self, tmp_path, result):
        cache = DiskCache(tmp_path)
        cache.put("a", result)
        cache.put("b", result)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_env_var_controls_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        assert DiskCache().directory == tmp_path / "env"

    def test_default_cache_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        set_default_cache(None)
        try:
            assert isinstance(default_cache(), SqlitePlanStore)
        finally:
            set_default_cache(None)
            monkeypatch.delenv("REPRO_CACHE_DIR")
            assert isinstance(default_cache(), MemoryCache)


_SUBPROCESS_SCRIPT = """
import json
from repro.runtime import DiskCache, RunRequest, execute

request = RunRequest(benchmark="resnet18", system="Hydra-S",
                     with_energy=False)
outcome = execute([request], jobs=1, cache=DiskCache())
manifest = outcome.manifest
print(json.dumps({
    "hits": manifest.hits,
    "misses": manifest.misses,
    "total_seconds": outcome[0].result.total_seconds,
}))
"""


class TestCrossProcessPersistence:
    def _invoke(self, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    def test_second_invocation_is_all_hits(self, tmp_path):
        first = self._invoke(tmp_path)
        assert (first["hits"], first["misses"]) == (0, 1)
        second = self._invoke(tmp_path)
        assert (second["hits"], second["misses"]) == (1, 0)
        # Cached numbers are identical, not approximately equal.
        assert second["total_seconds"] == first["total_seconds"]


class TestInvalidationThroughRequests:
    def test_changed_calibration_misses(self, tmp_path):
        from dataclasses import replace

        from repro.cost.calibration import DEFAULT_CALIBRATION

        cache = DiskCache(tmp_path)
        base = RunRequest(benchmark="resnet18", system="Hydra-S",
                          with_energy=False)
        scales = dict(DEFAULT_CALIBRATION.work_scale)
        scales["resnet18"] *= 3.0
        changed = RunRequest(
            benchmark="resnet18", system="Hydra-S", with_energy=False,
            calibration=replace(DEFAULT_CALIBRATION, work_scale=scales),
        )
        from repro.runtime import run_one

        r_base = run_one(base, cache=cache)
        assert not r_base.cache_hit
        r_changed = run_one(changed, cache=cache)
        assert not r_changed.cache_hit  # calibration change → miss
        assert (r_changed.result.total_seconds
                > r_base.result.total_seconds)
        assert run_one(base, cache=cache).cache_hit
        assert run_one(changed, cache=cache).cache_hit
