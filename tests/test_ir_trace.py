"""Unit tests for the shared FHE-op IR: traces, algebra, serialization,
simulator threading, and pre-IR cache-blob compatibility."""

import json
import pathlib

import pytest

from repro.cost.ops import (
    CCMM_UNIT,
    CONVBN_UNIT,
    FC_UNIT,
    NONLINEAR_UNIT,
    PCMM_UNIT,
    POOLING_UNIT,
)
from repro.ir import (
    CANONICAL_ORDER,
    FheOp,
    OpTrace,
    as_trace,
    coerce_op,
    collect_ops,
    record_op,
)

TABLE1_BUNDLES = {
    "convbn": CONVBN_UNIT,
    "pooling": POOLING_UNIT,
    "fc": FC_UNIT,
    "pcmm": PCMM_UNIT,
    "ccmm": CCMM_UNIT,
    "nonlinear": NONLINEAR_UNIT,
}


class TestVocabulary:
    def test_coerce_accepts_enum_and_name(self):
        assert coerce_op("hadd") is FheOp.HADD
        assert coerce_op(FheOp.PMULT) is FheOp.PMULT

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            coerce_op("bogus")

    def test_canonical_order_covers_vocabulary(self):
        assert set(CANONICAL_ORDER) == set(FheOp)
        assert len(CANONICAL_ORDER) == len(FheOp)


class TestAlgebra:
    def test_add_merges_counts(self):
        a = OpTrace.single(FheOp.HADD, 2, level=3)
        b = OpTrace.single(FheOp.HADD, 1, level=3) + OpTrace.single(
            FheOp.PMULT, 4, level=2)
        merged = a + b
        assert merged.total(FheOp.HADD) == 3
        assert merged.total("pmult") == 4
        # operands untouched
        assert a.total(FheOp.HADD) == 2

    def test_scaled(self):
        t = OpTrace.single(FheOp.ROTATION, 3, level=5).scaled(2.5)
        assert t.total(FheOp.ROTATION) == 7.5

    def test_zero_counts_are_dropped(self):
        t = OpTrace.single(FheOp.HADD, 0)
        assert not t
        assert t.items() == []
        assert OpTrace.single(FheOp.HADD, 1).scaled(0).total_ops == 0

    def test_at_level_binds_only_unbound_entries(self):
        t = OpTrace([((FheOp.HADD, None), 2), ((FheOp.PMULT, 7), 1)])
        bound = t.at_level(4)
        assert bound.items() == [((FheOp.PMULT, 7), 1), ((FheOp.HADD, 4), 2)]

    def test_equality_is_order_insensitive(self):
        a = OpTrace([((FheOp.HADD, 1), 2), ((FheOp.PMULT, 1), 3)])
        b = OpTrace([((FheOp.PMULT, 1), 3), ((FheOp.HADD, 1), 2)])
        assert a == b
        assert a != b + OpTrace.single(FheOp.HADD, 1, level=1)

    def test_totals_aggregate_over_levels(self):
        t = (OpTrace.single(FheOp.HADD, 2, level=1)
             + OpTrace.single(FheOp.HADD, 3, level=2))
        assert t.totals() == {"hadd": 5}
        assert t.total(FheOp.HADD) == 5

    def test_update_in_place_with_factor(self):
        acc = OpTrace.single(FheOp.CMULT, 1, level=2)
        acc.update(OpTrace.single(FheOp.CMULT, 2, level=2), factor=3)
        assert acc.total(FheOp.CMULT) == 7


class TestSerialization:
    def test_json_round_trip_exact(self):
        t = (OpTrace.single(FheOp.ROTATION, 8, level=20)
             + OpTrace.single(FheOp.PMULT, 2.5, level=20)
             + OpTrace.single(FheOp.HADD, 7, level=None))
        blob = json.dumps(t.to_dict())
        back = OpTrace.from_dict(json.loads(blob))
        assert back == t
        assert back.to_dict() == t.to_dict()

    def test_layout_is_deterministic(self):
        a = OpTrace([((FheOp.HADD, 1), 2), ((FheOp.ROTATION, 1), 3)])
        b = OpTrace([((FheOp.ROTATION, 1), 3), ((FheOp.HADD, 1), 2)])
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    @pytest.mark.parametrize("name", sorted(TABLE1_BUNDLES))
    def test_from_bundle_matches_attributes(self, name):
        bundle = TABLE1_BUNDLES[name]
        trace = bundle.trace(level=11)
        for op in CANONICAL_ORDER:
            assert trace.total(op) == getattr(bundle, op.value, 0)
        assert trace.total_ops == bundle.total_ops
        assert all(lvl == 11 for (_, lvl), _ in trace.items())

    def test_as_trace_coercions(self):
        t = OpTrace.single(FheOp.HADD, 1)
        assert as_trace(t) is t
        mapped = as_trace({"hadd": 2, "rotation": 1}, level=5)
        assert mapped.items() == [((FheOp.ROTATION, 5), 1),
                                  ((FheOp.HADD, 5), 2)]
        assert as_trace(CONVBN_UNIT).total("rotation") == 8


class TestCollectors:
    def test_collectors_nest_without_stealing(self):
        with collect_ops() as outer:
            record_op(FheOp.HADD, level=3, metric=None)
            with collect_ops() as inner:
                record_op(FheOp.PMULT, level=2, metric=None)
        assert outer.totals() == {"pmult": 1, "hadd": 1}
        assert inner.totals() == {"pmult": 1}

    def test_no_collector_is_a_noop(self):
        record_op(FheOp.HADD, metric=None)  # must not raise

    def test_record_op_emits_the_legacy_metric(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            record_op(FheOp.ROTATION, level=4, count=2)
        counters = registry.snapshot()["counters"]
        assert "ckks.evaluator.ops" in counters
        series = counters["ckks.evaluator.ops"]
        assert sum(series.values()) == 2
        assert any("rotation" in labels for labels in series)


class TestSimContracts:
    def test_negative_send_size_rejected(self):
        from repro.sim.program import SendTask

        with pytest.raises(ValueError):
            SendTask(dst=0, size=-1.0)

    def test_negative_compute_duration_rejected(self):
        from repro.sim.program import ComputeTask

        with pytest.raises(ValueError):
            ComputeTask(duration=-0.5)

    def test_simulator_threads_ops_into_node_histograms(self):
        from repro.hw import hydra_cluster
        from repro.sim import ProgramBuilder, Simulator
        from repro.sim.result import SimResult

        builder = ProgramBuilder(2)
        builder.compute(0, 1e-6, ops=OpTrace.single(FheOp.HADD, 3, level=2))
        builder.compute(0, 1e-6, ops=OpTrace.single(FheOp.PMULT, 1, level=2))
        builder.compute(1, 1e-6)  # uninstrumented card
        result = Simulator(hydra_cluster(1, 2)).run(builder.build())
        assert result.node_ops[0].totals() == {"pmult": 1, "hadd": 3}
        assert result.node_ops[1] is None
        assert result.total_ops().totals() == {"pmult": 1, "hadd": 3}
        # and the histogram survives the cache round trip
        back = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.node_ops[0] == result.node_ops[0]
        assert back.node_ops[1] is None

    def test_total_ops_none_when_uninstrumented(self):
        from repro.hw import hydra_cluster
        from repro.sim import ProgramBuilder, Simulator

        builder = ProgramBuilder(1)
        builder.compute(0, 1e-6)
        result = Simulator(hydra_cluster(1, 1)).run(builder.build())
        assert result.node_ops == []
        assert result.total_ops() is None


class TestPreIrCacheCompatibility:
    FIXTURE = pathlib.Path(__file__).parent / "data" / \
        "model_run_result_pre_ir.json"

    def test_pre_ir_blob_still_deserializes(self):
        """A result cached before the IR existed loads unchanged."""
        from repro.sched.planner import ModelRunResult

        data = json.loads(self.FIXTURE.read_text())
        assert "node_ops" not in data["sim"]  # genuinely pre-IR
        result = ModelRunResult.from_dict(data)
        assert result.total_seconds == pytest.approx(data["total_seconds"])
        assert result.sim.node_ops == []
        assert result.sim.total_ops() is None

    def test_pre_ir_blob_round_trips(self):
        from repro.sched.planner import ModelRunResult

        data = json.loads(self.FIXTURE.read_text())
        result = ModelRunResult.from_dict(data)
        again = ModelRunResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert again.total_seconds == result.total_seconds
        assert again.sim.makespan == result.sim.makespan


class TestOpHistogram:
    def test_rows_and_totals(self):
        from repro.analysis import op_histogram

        node_ops = [
            OpTrace.single(FheOp.HADD, 2, level=1),
            None,
            OpTrace.single(FheOp.HADD, 1) + OpTrace.single(FheOp.ROTATION, 4),
        ]
        headers, rows = op_histogram(node_ops)
        assert headers == ["Card", "rotation", "hadd"]
        assert rows == [[0, 0, 2], [2, 4, 1], ["total", 4, 3]]

    def test_empty(self):
        from repro.analysis import op_histogram

        assert op_histogram([None, None]) == ([], [])


class TestLevelHistogram:
    def test_rows_keyed_by_level_fresh_first(self):
        from repro.analysis import level_histogram

        node_ops = [
            OpTrace.single(FheOp.HADD, 2, level=3),
            None,
            (OpTrace.single(FheOp.HADD, 1, level=3)
             + OpTrace.single(FheOp.ROTATION, 4, level=1)
             + OpTrace.single(FheOp.CMULT, 5)),  # level-less
        ]
        headers, rows = level_histogram(node_ops)
        assert headers == ["Level", "rotation", "cmult", "hadd"]
        assert rows == [
            [3, 0, 0, 3],
            [1, 4, 0, 0],
            ["-", 0, 5, 0],
            ["total", 4, 5, 3],
        ]

    def test_max_rows_folds_the_tail(self):
        from repro.analysis import level_histogram

        node_ops = [OpTrace.single(FheOp.HADD, 1, level=lvl)
                    for lvl in range(6)]
        headers, rows = level_histogram(node_ops, max_rows=2)
        assert rows[0] == [5, 1]
        assert rows[1] == [4, 1]
        assert rows[2] == ["...", 4]  # levels 3..0 folded, not dropped
        assert rows[3] == ["total", 6]

    def test_empty(self):
        from repro.analysis import level_histogram

        assert level_histogram([None]) == ([], [])
