"""Functional tests for homomorphic 2-D convolution (the ConvBN kernel)."""

import numpy as np
import pytest

from repro.ckks.convolution import (
    Conv2d,
    average_pool_kernel,
    pack_image,
    unpack_image,
)

TOL = 5e-3


def _conv_fixture(fixture, kernel, h, w, bias=0.0):
    conv = Conv2d(fixture.context, kernel, h, w, bias=bias)
    elements = [fixture.context.galois_element_for_step(s)
                for s in conv.required_rotation_steps()]
    gk = fixture.keygen.create_galois_keys(elements)
    return conv, gk


class TestPacking:
    def test_round_trip(self, rng):
        img = rng.normal(size=(4, 6))
        assert np.array_equal(unpack_image(pack_image(img), 4, 6), img)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_image(np.zeros(5))


class TestConv2d:
    def test_3x3_uses_eight_rotations(self, deep_fhe, rng):
        """Table I: one ConvBN unit has exactly 8 rotations (3x3 taps,
        the center tap needs none)."""
        kernel = rng.normal(size=(3, 3))
        conv = Conv2d(deep_fhe.context, kernel, 8, 8)
        assert len(conv.required_rotation_steps()) == 8

    def test_matches_plaintext_reference(self, deep_fhe, rng):
        h = w = 8
        kernel = 0.2 * rng.normal(size=(3, 3))
        conv, gk = _conv_fixture(deep_fhe, kernel, h, w)
        img = rng.normal(scale=0.5, size=(h, w))
        ct = deep_fhe.encrypt(pack_image(img))
        out = conv.apply(ct, deep_fhe.evaluator, gk)
        got = unpack_image(deep_fhe.decrypt(out).real, h, w)
        assert np.max(np.abs(got - conv.reference(img))) < TOL

    def test_identity_kernel(self, deep_fhe, rng):
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        conv, gk = _conv_fixture(deep_fhe, kernel, 8, 8)
        img = rng.normal(scale=0.5, size=(8, 8))
        ct = deep_fhe.encrypt(pack_image(img))
        out = conv.apply(ct, deep_fhe.evaluator, gk)
        got = unpack_image(deep_fhe.decrypt(out).real, 8, 8)
        assert np.max(np.abs(got - img)) < TOL

    def test_bias_is_the_bn_fold(self, deep_fhe, rng):
        """ConvBN = convolution + a single HAdd (paper Section III-A)."""
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        conv, gk = _conv_fixture(deep_fhe, kernel, 8, 8, bias=0.25)
        img = rng.normal(scale=0.5, size=(8, 8))
        ct = deep_fhe.encrypt(pack_image(img))
        out = conv.apply(ct, deep_fhe.evaluator, gk)
        got = unpack_image(deep_fhe.decrypt(out).real, 8, 8)
        assert np.max(np.abs(got - (img + 0.25))) < TOL

    def test_average_pool_kernel(self, deep_fhe, rng):
        """AvgPool as a 1/k^2 convolution (paper Section III-A)."""
        conv, gk = _conv_fixture(deep_fhe, average_pool_kernel(3), 8, 8)
        img = rng.normal(scale=0.5, size=(8, 8))
        ct = deep_fhe.encrypt(pack_image(img))
        out = conv.apply(ct, deep_fhe.evaluator, gk)
        got = unpack_image(deep_fhe.decrypt(out).real, 8, 8)
        assert np.max(np.abs(got - conv.reference(img))) < TOL
        # Pooling a constant image is the identity.
        flat = np.full((8, 8), 0.5)
        ct2 = deep_fhe.encrypt(pack_image(flat))
        out2 = conv.apply(ct2, deep_fhe.evaluator, gk)
        got2 = unpack_image(deep_fhe.decrypt(out2).real, 8, 8)
        assert np.max(np.abs(got2 - 0.5)) < TOL


class TestValidation:
    def test_even_kernel_rejected(self, deep_fhe):
        with pytest.raises(ValueError):
            Conv2d(deep_fhe.context, np.zeros((2, 2)), 8, 8)

    def test_non_square_kernel_rejected(self, deep_fhe):
        with pytest.raises(ValueError):
            Conv2d(deep_fhe.context, np.zeros((3, 5)), 8, 8)

    def test_oversized_image_rejected(self, deep_fhe):
        n = deep_fhe.params.slot_count
        with pytest.raises(ValueError):
            Conv2d(deep_fhe.context, np.eye(3), n, n)

    def test_zero_kernel_rejected_on_apply(self, deep_fhe, rng):
        conv = Conv2d(deep_fhe.context, np.zeros((3, 3)), 8, 8)
        ct = deep_fhe.encrypt(rng.normal(size=64))
        with pytest.raises(ValueError):
            conv.apply(ct, deep_fhe.evaluator, deep_fhe.galois_keys)

    def test_reference_shape_check(self, deep_fhe):
        conv = Conv2d(deep_fhe.context, np.eye(3), 8, 8)
        with pytest.raises(ValueError):
            conv.reference(np.zeros((4, 4)))
