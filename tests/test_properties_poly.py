"""Property-based tests for RNS polynomials and the encoder."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ckks.encoder import CkksEncoder
from repro.poly import RnsContext, RnsPoly

_SETTINGS = dict(max_examples=25, deadline=None)


def _poly_from_seed(rns, seed, bound=1000):
    rng = np.random.default_rng(seed)
    coeffs = [int(c) for c in rng.integers(-bound, bound, rns.poly_degree)]
    return RnsPoly.from_int_coeffs(rns, coeffs, rns.data_indices)


class TestRingAxioms:
    @given(st.integers(0, 2 ** 31), st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_add_commutes(self, s1, s2):
        rns = _module_rns()
        a, b = _poly_from_seed(rns, s1), _poly_from_seed(rns, s2)
        assert np.array_equal(a.add(b).data, b.add(a).data)

    @given(st.integers(0, 2 ** 31), st.integers(0, 2 ** 31),
           st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_mul_distributes_over_add(self, s1, s2, s3):
        rns = _module_rns()
        a, b, c = (_poly_from_seed(rns, s) for s in (s1, s2, s3))
        lhs = a.multiply(b.add(c))
        rhs = a.multiply(b).add(a.multiply(c))
        assert np.array_equal(lhs.data, rhs.data)

    @given(st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_negate_is_additive_inverse(self, s):
        rns = _module_rns()
        a = _poly_from_seed(rns, s)
        zero = a.add(a.negate())
        assert not zero.data.any()

    @given(st.integers(0, 2 ** 31), st.sampled_from([3, 5, 127]))
    @settings(**_SETTINGS)
    def test_automorphism_is_additive(self, s, g):
        rns = _module_rns()
        a = _poly_from_seed(rns, s)
        b = _poly_from_seed(rns, s + 1)
        lhs = a.add(b).automorphism(g)
        rhs = a.automorphism(g).add(b.automorphism(g))
        assert np.array_equal(lhs.data, rhs.data)

    @given(st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_crt_round_trip(self, s):
        rns = _module_rns()
        rng = np.random.default_rng(s)
        coeffs = [int(c) for c in rng.integers(-10 ** 8, 10 ** 8, 64)]
        poly = RnsPoly.from_int_coeffs(rns, coeffs, rns.data_indices)
        assert [int(c) for c in poly.to_int_coeffs()] == coeffs


_RNS_SINGLETON = None


def _module_rns():
    global _RNS_SINGLETON
    if _RNS_SINGLETON is None:
        _RNS_SINGLETON = RnsContext.create(
            poly_degree=64, first_modulus_bits=29, scale_modulus_bits=25,
            num_scale_moduli=2, special_modulus_bits=30,
            num_special_moduli=1,
        )
    return _RNS_SINGLETON


class TestEncoderProperties:
    @given(st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_round_trip(self, seed):
        enc = CkksEncoder(64)
        rng = np.random.default_rng(seed)
        z = rng.normal(size=32) + 1j * rng.normal(size=32)
        back = enc.coeffs_to_slots(enc.slots_to_coeffs(z))
        assert np.max(np.abs(back - z)) < 1e-8

    @given(st.integers(0, 2 ** 31),
           st.floats(-4.0, 4.0, allow_nan=False))
    @settings(**_SETTINGS)
    def test_scaling_linearity(self, seed, factor):
        enc = CkksEncoder(64)
        rng = np.random.default_rng(seed)
        z = rng.normal(size=32) + 1j * rng.normal(size=32)
        lhs = enc.slots_to_coeffs(factor * z)
        rhs = factor * enc.slots_to_coeffs(z)
        assert np.max(np.abs(lhs - rhs)) < 1e-8

    @given(st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_real_slots_give_symmetric_spectrum(self, seed):
        """Real slot vectors encode with real coefficients by design."""
        enc = CkksEncoder(64)
        rng = np.random.default_rng(seed)
        z = rng.normal(size=32).astype(complex)
        coeffs = enc.slots_to_coeffs(z)
        assert np.max(np.abs(np.imag(coeffs))) < 1e-12
