"""Unit tests for the negacyclic NTT."""

import numpy as np
import pytest

from repro.math.ntt import NttContext, bit_reverse_permutation
from repro.math.primes import find_ntt_primes


def _reference_negacyclic(a, b, q):
    """Schoolbook product in Z_q[X]/(X^N + 1) with exact big-int math."""
    n = len(a)
    full = np.convolve(np.array([int(x) for x in a], dtype=object),
                       np.array([int(x) for x in b], dtype=object))
    res = np.array(full[:n], dtype=object)
    res[: n - 1] = res[: n - 1] - full[n:]
    return np.array([int(c) % q for c in res], dtype=np.uint64)


class TestBitReversePermutation:
    def test_involution(self):
        perm = bit_reverse_permutation(16)
        assert np.array_equal(perm[perm], np.arange(16))

    def test_known_values(self):
        assert list(bit_reverse_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation(12)


class TestNttRoundTrip:
    @pytest.mark.parametrize("degree", [16, 64, 256, 1024])
    def test_inverse_of_forward(self, degree):
        q = find_ntt_primes(degree, 28, 1)[0]
        ctx = NttContext(degree, modulus=q)
        rng = np.random.default_rng(degree)
        a = rng.integers(0, q, degree, dtype=np.uint64)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_forward_of_inverse(self):
        degree, q = 128, find_ntt_primes(128, 28, 1)[0]
        ctx = NttContext(degree, modulus=q)
        rng = np.random.default_rng(7)
        a = rng.integers(0, q, degree, dtype=np.uint64)
        assert np.array_equal(ctx.forward(ctx.inverse(a)), a)


class TestNegacyclicMultiply:
    @pytest.mark.parametrize("degree", [16, 128])
    def test_matches_schoolbook(self, degree):
        q = find_ntt_primes(degree, 28, 1)[0]
        ctx = NttContext(degree, modulus=q)
        rng = np.random.default_rng(degree + 1)
        a = rng.integers(0, q, degree, dtype=np.uint64)
        b = rng.integers(0, q, degree, dtype=np.uint64)
        got = ctx.negacyclic_multiply(a, b)
        assert np.array_equal(got, _reference_negacyclic(a, b, q))

    def test_x_to_the_n_is_minus_one(self):
        """X^(N/2) * X^(N/2) = X^N = -1 in the negacyclic ring."""
        degree = 64
        q = find_ntt_primes(degree, 28, 1)[0]
        ctx = NttContext(degree, modulus=q)
        half = np.zeros(degree, dtype=np.uint64)
        half[degree // 2] = 1
        prod = ctx.negacyclic_multiply(half, half)
        expected = np.zeros(degree, dtype=np.uint64)
        expected[0] = q - 1
        assert np.array_equal(prod, expected)

    def test_multiplication_by_one(self):
        degree = 32
        q = find_ntt_primes(degree, 28, 1)[0]
        ctx = NttContext(degree, modulus=q)
        one = np.zeros(degree, dtype=np.uint64)
        one[0] = 1
        rng = np.random.default_rng(3)
        a = rng.integers(0, q, degree, dtype=np.uint64)
        assert np.array_equal(ctx.negacyclic_multiply(a, one), a)


class TestNttValidation:
    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ValueError):
            NttContext(64, modulus=17)  # 17 != 1 mod 128

    def test_rejects_oversized_modulus(self):
        with pytest.raises(ValueError):
            NttContext(64, modulus=(1 << 33) + 1)

    def test_rejects_wrong_shape(self):
        q = find_ntt_primes(64, 28, 1)[0]
        ctx = NttContext(64, modulus=q)
        with pytest.raises(ValueError):
            ctx.forward(np.zeros(32, dtype=np.uint64))
