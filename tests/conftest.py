"""Shared fixtures: session-scoped CKKS contexts and key material.

Key generation is the expensive part of the functional tests, so a single
context + key set is shared per parameter regime across the whole session.
Tests never mutate ciphertexts in place (the API forbids it), so sharing
is safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import (
    BootstrapKeys,
    Bootstrapper,
    CkksContext,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    toy_parameters,
)


class CkksFixture:
    """Bundle of everything a functional CKKS test needs."""

    def __init__(self, params, seed=0, rotation_steps=(1, 2, 4, 8, -1)):
        self.params = params
        self.context = CkksContext(params)
        self.keygen = KeyGenerator(self.context, seed=seed)
        self.public_key = self.keygen.create_public_key()
        self.relin_key = self.keygen.create_relin_key()
        elements = [self.context.galois_element_for_step(s)
                    for s in rotation_steps]
        elements.append(self.context.conjugation_element)
        self.galois_keys = self.keygen.create_galois_keys(elements)
        self.encryptor = Encryptor(self.context, self.public_key, seed=seed + 1)
        self.decryptor = Decryptor(self.context, self.keygen.secret_key)
        self.evaluator = Evaluator(self.context)

    def encrypt(self, values, **kwargs):
        return self.encryptor.encrypt_values(values, **kwargs)

    def decrypt(self, ct):
        return self.decryptor.decrypt_values(ct)

    def random_vector(self, rng, scale=0.5, complex_values=False):
        n = self.params.slot_count
        real = rng.normal(scale=scale, size=n)
        if not complex_values:
            return real
        return real + 1j * rng.normal(scale=scale, size=n)


@pytest.fixture(scope="session")
def toy_fhe():
    """N=256, 4 levels: the workhorse fixture for arithmetic tests."""
    return CkksFixture(toy_parameters(poly_degree=256, num_scale_moduli=4))


@pytest.fixture(scope="session")
def deep_fhe():
    """N=128, 8 levels: for polynomial-evaluation depth tests."""
    return CkksFixture(toy_parameters(poly_degree=128, num_scale_moduli=8))


@pytest.fixture(scope="session")
def boot_fhe():
    """N=128, sparse secret, 18 levels: bootstrapping tests."""
    params = CkksParameters(
        poly_degree=128,
        first_modulus_bits=29,
        scale_bits=25,
        num_scale_moduli=18,
        special_modulus_bits=30,
        num_special_moduli=2,
        secret_hamming_weight=4,
    )
    return CkksFixture(params)


@pytest.fixture(scope="session")
def bootstrapper(boot_fhe):
    """A ready-to-use bootstrapper + keys on the boot_fhe fixture."""
    bs = Bootstrapper(boot_fhe.context, boot_fhe.evaluator,
                      taylor_degree=7, daf_iterations=6)
    gk = boot_fhe.keygen.create_galois_keys(bs.required_galois_elements())
    keys = BootstrapKeys(relin_key=boot_fhe.relin_key, galois_keys=gk)
    return bs, keys


@pytest.fixture()
def rng():
    # "HYDR" in ASCII — a fixed seed for reproducible randomness.
    return np.random.default_rng(0x48594452)
