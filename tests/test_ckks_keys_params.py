"""Unit tests for key material and parameter validation."""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    CkksParameters,
    Decryptor,
    Encryptor,
    KeyGenerator,
    toy_parameters,
)
from repro.ckks.params import PAPER_PARAMS


class TestParameterValidation:
    def test_rejects_non_power_of_two_degree(self):
        with pytest.raises(ValueError):
            CkksParameters(poly_degree=100, first_modulus_bits=29,
                           scale_bits=25, num_scale_moduli=2)

    def test_rejects_oversized_moduli(self):
        with pytest.raises(ValueError):
            CkksParameters(poly_degree=64, first_modulus_bits=40,
                           scale_bits=25, num_scale_moduli=2)

    def test_rejects_scale_above_first_modulus(self):
        with pytest.raises(ValueError):
            CkksParameters(poly_degree=64, first_modulus_bits=25,
                           scale_bits=25, num_scale_moduli=2)

    def test_derived_quantities(self):
        p = toy_parameters(poly_degree=256, num_scale_moduli=4)
        assert p.slot_count == 128
        assert p.max_level == 4
        assert p.scale == 2.0 ** 25
        assert p.log_q == 29 + 4 * 25

    def test_paper_parameter_set(self):
        assert PAPER_PARAMS.poly_degree == 2 ** 16
        assert PAPER_PARAMS.slot_count == 2 ** 15
        assert PAPER_PARAMS.log_q == 1260
        assert PAPER_PARAMS.log_pq == 1692
        assert PAPER_PARAMS.evalexp_degree == 59


class TestKeyGeneration:
    def test_deterministic_with_seed(self):
        params = toy_parameters(poly_degree=64, num_scale_moduli=2)
        ctx = CkksContext(params)
        kg1 = KeyGenerator(ctx, seed=5)
        kg2 = KeyGenerator(ctx, seed=5)
        assert np.array_equal(kg1.secret_key.poly.data,
                              kg2.secret_key.poly.data)

    def test_different_seeds_differ(self):
        params = toy_parameters(poly_degree=64, num_scale_moduli=2)
        ctx = CkksContext(params)
        kg1 = KeyGenerator(ctx, seed=5)
        kg2 = KeyGenerator(ctx, seed=6)
        assert not np.array_equal(kg1.secret_key.poly.data,
                                  kg2.secret_key.poly.data)

    def test_sparse_secret_hamming_weight(self):
        params = toy_parameters(poly_degree=128, num_scale_moduli=2,
                                secret_hamming_weight=8)
        ctx = CkksContext(params)
        kg = KeyGenerator(ctx, seed=0)
        coeffs = kg.secret_key.poly.to_int_coeffs()
        nonzero = sum(1 for c in coeffs if int(c) != 0)
        assert nonzero == 8
        assert all(int(c) in (-1, 0, 1) for c in coeffs)

    def test_secret_is_ternary(self, toy_fhe):
        coeffs = toy_fhe.keygen.secret_key.poly.to_int_coeffs()
        assert all(int(c) in (-1, 0, 1) for c in coeffs)

    def test_relin_key_has_pair_per_data_limb(self, toy_fhe):
        limbs = len(toy_fhe.context.rns.data_indices)
        assert len(toy_fhe.relin_key) == limbs

    def test_galois_keys_lookup_error(self, toy_fhe):
        with pytest.raises(KeyError, match="Galois"):
            toy_fhe.galois_keys.key_for(123456)

    def test_public_key_decrypts_to_noise(self, toy_fhe):
        """b + a*s must be small (the RLWE error), not random."""
        pk = toy_fhe.public_key
        s = toy_fhe.keygen.secret_key.poly.keep_basis(pk.b.basis)
        residual = pk.b.add(pk.a.multiply(s)).to_int_coeffs()
        bound = 8 * toy_fhe.params.error_stddev * np.sqrt(
            toy_fhe.params.poly_degree
        )
        assert max(abs(int(c)) for c in residual) < bound


class TestCrossKeyIsolation:
    def test_wrong_secret_fails_to_decrypt(self, rng):
        params = toy_parameters(poly_degree=64, num_scale_moduli=2)
        ctx = CkksContext(params)
        kg_a = KeyGenerator(ctx, seed=1)
        kg_b = KeyGenerator(ctx, seed=2)
        enc = Encryptor(ctx, kg_a.create_public_key(), seed=3)
        wrong = Decryptor(ctx, kg_b.secret_key)
        z = rng.normal(scale=0.5, size=params.slot_count)
        ct = enc.encrypt_values(z)
        got = wrong.decrypt_values(ct)
        # Decryption under the wrong key yields garbage, not the message.
        assert np.max(np.abs(got - z)) > 1.0
