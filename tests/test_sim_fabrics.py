"""Unit tests for the interconnect fabric models."""

import pytest

from repro.hw import fab_cluster, hydra_cluster
from repro.sim.fabrics import (
    FabHostFabric,
    HydraSwitchFabric,
    NullFabric,
    build_fabric,
)


@pytest.fixture()
def hydra_fabric():
    return HydraSwitchFabric(hydra_cluster(2, 4))


@pytest.fixture()
def fab_fabric():
    return FabHostFabric(fab_cluster(8))


class TestBuildFabric:
    def test_dispatch(self):
        assert isinstance(build_fabric(hydra_cluster(1, 1)), NullFabric)
        assert isinstance(build_fabric(hydra_cluster(1, 4)),
                          HydraSwitchFabric)
        assert isinstance(build_fabric(fab_cluster(4)), FabHostFabric)

    def test_switch_fabric_requires_dtu(self):
        from repro.hw import FAB_CARD
        from repro.hw.cluster import ClusterSpec, NetworkSpec
        bad = ClusterSpec(name="bad", servers=1, cards_per_server=4,
                          card=FAB_CARD, network=NetworkSpec(),
                          fabric="hydra-switch")
        with pytest.raises(ValueError):
            HydraSwitchFabric(bad)


class TestNullFabric:
    def test_transfers_rejected(self):
        f = NullFabric()
        with pytest.raises(RuntimeError):
            f.unicast(0, 1, 100, 0.0)
        with pytest.raises(RuntimeError):
            f.broadcast(0, [1], 100, 0.0)


class TestHydraSwitchFabric:
    def test_unicast_bandwidth(self, hydra_fabric):
        size = 12.5e9  # exactly one second at QSFP line rate
        release, deliveries = hydra_fabric.unicast(0, 1, size, 0.0)
        assert release == pytest.approx(1.0)
        assert deliveries[1] == pytest.approx(
            1.0 + hydra_fabric._intra_latency, rel=1e-6
        )

    def test_inter_server_latency(self, hydra_fabric):
        # Cards 0 and 4 are on different servers (2 servers x 4 cards).
        _, near = hydra_fabric.unicast(0, 1, 1000, 0.0)
        hydra_fabric.reset()
        _, far = hydra_fabric.unicast(0, 4, 1000, 0.0)
        assert far[4] > near[1]

    def test_tx_port_serializes(self, hydra_fabric):
        _, first = hydra_fabric.unicast(0, 1, 12.5e9, 0.0)
        release2, second = hydra_fabric.unicast(0, 2, 12.5e9, 0.0)
        assert release2 >= 2.0  # queued behind the first send

    def test_rx_ports_parallel_in_broadcast(self, hydra_fabric):
        _, deliveries = hydra_fabric.broadcast(0, [1, 2, 3], 12.5e9, 0.0)
        times = sorted(deliveries.values())
        # All same-server receivers complete ~together (switch replicates).
        assert times[-1] - times[0] < 0.2

    def test_reset_clears_occupancy(self, hydra_fabric):
        hydra_fabric.unicast(0, 1, 12.5e9, 0.0)
        hydra_fabric.reset()
        release, _ = hydra_fabric.unicast(0, 1, 12.5e9, 0.0)
        assert release == pytest.approx(1.0)


class TestFabHostFabric:
    def test_paired_cards_bypass_hosts(self, fab_fabric):
        release, deliveries = fab_fabric.unicast(0, 1, 1e6, 0.0)
        assert deliveries[1] < 1e-3  # direct pair link

    def test_unpaired_path_is_slow(self, fab_fabric):
        size = 25e6  # one ciphertext
        _, paired = fab_fabric.unicast(0, 1, size, 0.0)
        fab_fabric.reset()
        _, hosted = fab_fabric.unicast(0, 3, size, 0.0)
        assert hosted[3] > 5 * paired[1]

    def test_sender_releases_after_pcie(self, fab_fabric):
        size = 25e6
        release, deliveries = fab_fabric.unicast(0, 3, size, 0.0)
        assert release < deliveries[3]  # host buffers the LAN hop

    def test_lan_tx_serializes_broadcast(self, fab_fabric):
        size = 25e6
        _, deliveries = fab_fabric.broadcast(
            0, [2, 3, 4, 5, 6, 7], size, 0.0
        )
        times = sorted(deliveries.values())
        lan_time = size / 1.25e9
        # Sequential copies on the source host's LAN TX port.
        assert times[-1] - times[0] > 3 * lan_time

    def test_broadcast_includes_pair_peer_fast(self, fab_fabric):
        _, deliveries = fab_fabric.broadcast(0, [1, 2], 25e6, 0.0)
        assert deliveries[1] < deliveries[2]
