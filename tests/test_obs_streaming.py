"""Tests for the bounded-memory streaming aggregators (repro.obs v2).

The headline contract is the quantile error bound: for any value stream,
the streamed p50/p95/p99 are within ``relative_accuracy`` (relative) of
the exact nearest-rank quantiles — and *exactly* equal below the
retention limit.  The second contract is memory: bucket cells, window
arrays and in-flight intervals stay bounded however long the stream.
"""

import json
import math
import random

import pytest

from repro.obs import (
    StreamingHistogram,
    StreamingIntervalUnion,
    TimeWeightedValue,
    TimeWeightedWindows,
    WindowedCounter,
    nearest_rank,
)
from repro.obs.report import _length, _union


def _rel_err(est, exact):
    return abs(est - exact) / exact if exact else abs(est)


class TestNearestRank:
    def test_matches_definition(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(values, 50) == 2.0
        assert nearest_rank(values, 75) == 3.0
        assert nearest_rank(values, 100) == 4.0
        assert nearest_rank([], 50) is None

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="percentile"):
            nearest_rank([1.0], 0)
        with pytest.raises(ValueError, match="percentile"):
            nearest_rank([1.0], 101)


class TestStreamingHistogram:
    def test_exact_below_limit(self):
        hist = StreamingHistogram(exact_limit=64)
        values = [random.Random(0).lognormvariate(0, 1) for _ in range(60)]
        for v in values:
            hist.add(v)
        assert hist.is_exact
        ordered = sorted(values)
        for q in (50, 95, 99):
            assert hist.quantile(q) == nearest_rank(ordered, q)

    def test_error_bound_documented_and_held(self):
        # The committed bound: streamed quantiles are within
        # relative_accuracy of the exact nearest-rank quantile.
        rng = random.Random(1234)
        hist = StreamingHistogram()  # 1% default
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(20000)]
        for v in values:
            hist.add(v)
        assert not hist.is_exact
        ordered = sorted(values)
        for q in (50, 95, 99):
            exact = nearest_rank(ordered, q)
            est = hist.quantile(q)
            assert _rel_err(est, exact) <= hist.relative_accuracy, (
                f"p{q}: streamed {est} vs exact {exact}"
            )

    def test_memory_is_bounded_by_dynamic_range(self):
        hist = StreamingHistogram()
        rng = random.Random(2)
        for _ in range(50000):
            hist.add(rng.uniform(1e-3, 1e3))
        # log(1e6) / log(gamma) ~ 691 buckets for a 1e6 dynamic range.
        bound = math.ceil(math.log(1e6) / math.log(hist._gamma)) + 2
        assert hist.bucket_count <= bound
        assert hist.count == 50000

    def test_exact_mode_never_promotes(self):
        hist = StreamingHistogram(exact_limit=4, exact=True)
        values = [float(i) for i in range(100)]
        for v in values:
            hist.add(v)
        assert hist.is_exact
        assert hist.bucket_count == 0
        assert hist.quantile(50) == nearest_rank(values, 50)

    def test_mean_min_max_always_exact(self):
        hist = StreamingHistogram(exact_limit=2)
        for v in (5.0, 1.0, 9.0, 3.0):
            hist.add(v)
        assert hist.min == 1.0 and hist.max == 9.0
        assert hist.mean == pytest.approx(4.5)

    def test_zero_and_tiny_values(self):
        hist = StreamingHistogram(exact_limit=1)
        hist.add(0.0)
        hist.add(1e-12)  # below min_value: zero bucket
        hist.add(10.0)
        assert hist.count == 3
        assert hist.quantile(50) == 0.0
        assert hist.quantile(100) == pytest.approx(10.0, rel=0.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            StreamingHistogram().add(-1.0)

    def test_snapshot_round_trip(self):
        hist = StreamingHistogram(exact_limit=8)
        for v in (0.5, 2.0, 2.0, 100.0, 0.0, 7.5, 1e-10, 3.0, 42.0):
            hist.add(v)
        snap = hist.snapshot()
        json.dumps(snap)  # plain JSON
        clone = StreamingHistogram.from_snapshot(snap)
        assert clone.snapshot() == snap
        for q in (50, 95, 99):
            assert clone.quantile(q) == hist.quantile(q)

    def test_merge_equals_single_stream(self):
        rng = random.Random(3)
        values = [rng.lognormvariate(0, 1) for _ in range(4000)]
        whole = StreamingHistogram()
        for v in values:
            whole.add(v)
        left, right = StreamingHistogram(), StreamingHistogram()
        for v in values[:1500]:
            left.add(v)
        for v in values[1500:]:
            right.add(v)
        left.merge(right.snapshot())
        # Fixed bucket boundaries: the merged sketch holds the exact
        # bucket state of the single-stream sketch; only the running sum
        # differs, by float summation order.
        merged, single = left.snapshot(), whole.snapshot()
        assert merged.pop("sum") == pytest.approx(single.pop("sum"))
        assert merged == single

    def test_merge_keeps_exactness_under_limit(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        for v in (1.0, 2.0):
            a.add(v)
        for v in (3.0, 4.0):
            b.add(v)
        a.merge(b)
        assert a.is_exact
        assert a.quantile(50) == 2.0

    def test_merge_rejects_layout_mismatch(self):
        a = StreamingHistogram(relative_accuracy=0.01)
        b = StreamingHistogram(relative_accuracy=0.02)
        b.add(1.0)
        with pytest.raises(ValueError, match="bucket layouts"):
            a.merge(b)

    def test_summary_shape(self):
        hist = StreamingHistogram()
        hist.add(1.0)
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "max", "p50", "p95", "p99"}
        empty = StreamingHistogram().summary()
        assert empty["count"] == 0 and empty["p99"] is None


class TestWindowedCounter:
    def test_counts_land_in_windows(self):
        counter = WindowedCounter(horizon=10.0, num_windows=5)
        counter.add(0.0)
        counter.add(1.9)
        counter.add(4.0)
        counter.add(9.99)
        assert counter.counts() == [2.0, 0.0, 1.0, 0.0, 1.0]
        assert counter.total == 4.0
        assert counter.rates() == [1.0, 0.0, 0.5, 0.0, 0.5]

    def test_post_horizon_clamps_to_last_window(self):
        counter = WindowedCounter(horizon=10.0, num_windows=5)
        counter.add(10.0)  # queue drain past the horizon
        counter.add(57.5)
        assert counter.counts()[-1] == 2.0

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="negative"):
            WindowedCounter(10.0, 5).add(-0.1)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="horizon"):
            WindowedCounter(0.0, 5)
        with pytest.raises(ValueError, match="num_windows"):
            WindowedCounter(10.0, 0)


class TestTimeWeightedWindows:
    def test_interval_spread_over_windows(self):
        windows = TimeWeightedWindows(horizon=10.0, num_windows=5)
        windows.add_interval(1.0, 5.0)  # 1s in w0, 2s in w1, 1s in w2
        assert windows.weighted() == pytest.approx([1.0, 2.0, 1.0, 0.0, 0.0])
        assert windows.means() == pytest.approx([0.5, 1.0, 0.5, 0.0, 0.0])

    def test_clips_to_horizon(self):
        windows = TimeWeightedWindows(horizon=10.0, num_windows=2)
        windows.add_interval(-5.0, 100.0)
        assert sum(windows.weighted()) == pytest.approx(10.0)

    def test_zero_duration_and_zero_value_are_noops(self):
        windows = TimeWeightedWindows(horizon=10.0, num_windows=2)
        windows.add_interval(3.0, 3.0)
        windows.add_interval(1.0, 2.0, value=0.0)
        assert windows.weighted() == [0.0, 0.0]


class TestTimeWeightedValue:
    def test_step_signal_mean_and_max(self):
        depth = TimeWeightedValue(horizon=10.0, num_windows=2)
        depth.update(0.0, 2)   # depth 2 over [0, 4)
        depth.update(4.0, 6)   # depth 6 over [4, 10)
        depth.finish(10.0)
        assert depth.max_value == 6.0
        assert depth.mean(10.0) == pytest.approx((2 * 4 + 6 * 6) / 10.0)
        assert depth.windows.means() == pytest.approx([
            (2 * 4 + 6 * 1) / 5.0, 6.0,
        ])

    def test_rejects_time_travel(self):
        depth = TimeWeightedValue(horizon=10.0, num_windows=2)
        depth.update(5.0, 1)
        with pytest.raises(ValueError, match="non-monotonic"):
            depth.update(4.0, 2)


class TestStreamingIntervalUnion:
    def test_matches_offline_union_on_random_streams(self):
        # The pinned equivalence: the streaming union equals the offline
        # merge obs.report computes from a full interval list, for any
        # stream with nondecreasing release times.
        rng = random.Random(9)
        for _ in range(20):
            union = StreamingIntervalUnion()
            intervals = []
            now = 0.0
            for _ in range(200):
                now += rng.uniform(0.0, 1.0)
                start = now + rng.uniform(0.0, 0.5)
                end = start + rng.uniform(0.0, 2.0)
                intervals.append((start, end))
                union.add(start, end, now=now)
            assert union.length == pytest.approx(_length(_union(intervals)))

    def test_finalizes_behind_the_clock(self):
        union = StreamingIntervalUnion()
        for k in range(1000):
            t = float(k)
            union.add(t, t + 0.5, now=t)
        # Every interval ends before the next release: nothing stays
        # resident except (at most) the newest one.
        assert union.active_count <= 1
        assert union.length == pytest.approx(500.0)

    def test_zero_duration_intervals_add_nothing(self):
        union = StreamingIntervalUnion()
        union.add(1.0, 1.0, now=0.0)
        union.add(5.0, 4.0, now=2.0)  # inverted == empty
        assert union.length == 0.0
        assert union.active_count == 0

    def test_empty_union(self):
        assert StreamingIntervalUnion().length == 0.0

    def test_rejects_non_monotonic_release(self):
        union = StreamingIntervalUnion()
        union.add(5.0, 6.0, now=5.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            union.add(1.0, 2.0, now=1.0)

    def test_overlapping_intervals_merge(self):
        union = StreamingIntervalUnion()
        union.add(0.0, 4.0, now=0.0)
        union.add(2.0, 6.0, now=1.0)
        union.add(10.0, 11.0, now=2.0)
        assert union.length == pytest.approx(7.0)
