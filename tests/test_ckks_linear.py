"""Functional tests for BSGS homomorphic linear transforms."""

import numpy as np
import pytest

from repro.ckks import LinearTransform


def _apply_matrix(fixture, matrix, z, baby_steps=None):
    lt = LinearTransform(fixture.context, matrix, baby_steps=baby_steps)
    steps = lt.required_rotation_steps()
    elements = [fixture.context.galois_element_for_step(s) for s in steps]
    gk = fixture.keygen.create_galois_keys(elements)
    ct = fixture.encrypt(z)
    out = fixture.evaluator.rescale(lt.apply(ct, fixture.evaluator, gk))
    return fixture.decrypt(out), lt


class TestDenseMatrix:
    def test_random_complex_matrix(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        m = 0.3 * (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n)))
        z = deep_fhe.random_vector(rng, complex_values=True)
        got, _ = _apply_matrix(deep_fhe, m, z)
        assert np.max(np.abs(got - m @ z)) < 5e-3

    def test_identity_matrix(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        z = deep_fhe.random_vector(rng)
        got, lt = _apply_matrix(deep_fhe, np.eye(n), z)
        assert lt.diagonal_count == 1
        assert lt.required_rotation_steps() == []
        assert np.max(np.abs(got - z)) < 5e-3

    def test_permutation_matrix(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        perm = np.roll(np.eye(n), -3, axis=1)  # out_j = in_{j-3}
        z = deep_fhe.random_vector(rng)
        got, lt = _apply_matrix(deep_fhe, perm, z)
        assert lt.diagonal_count == 1
        assert np.max(np.abs(got - np.roll(z, 3))) < 5e-3


class TestBsgsStructure:
    def test_rotation_count_is_sublinear(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        m = rng.normal(size=(n, n))
        lt = LinearTransform(deep_fhe.context, m)
        assert len(lt.required_rotation_steps()) <= 2 * int(np.ceil(np.sqrt(n)))

    def test_explicit_baby_steps(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        m = 0.3 * rng.normal(size=(n, n))
        z = deep_fhe.random_vector(rng)
        got, _ = _apply_matrix(deep_fhe, m, z, baby_steps=4)
        assert np.max(np.abs(got - m @ z)) < 5e-3

    def test_sparse_diagonals_skipped(self, deep_fhe):
        n = deep_fhe.params.slot_count
        m = np.diag(np.ones(n - 1), 1)  # single off-diagonal
        lt = LinearTransform(deep_fhe.context, m)
        assert lt.diagonal_count <= 2


class TestValidation:
    def test_wrong_shape_rejected(self, deep_fhe):
        with pytest.raises(ValueError):
            LinearTransform(deep_fhe.context, np.zeros((3, 3)))

    def test_zero_matrix_rejected_on_apply(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        lt = LinearTransform(deep_fhe.context, np.zeros((n, n)))
        ct = deep_fhe.encrypt(deep_fhe.random_vector(rng))
        with pytest.raises(ValueError):
            lt.apply(ct, deep_fhe.evaluator, deep_fhe.galois_keys)
