"""Functional tests for the CKKS bootstrapping pipeline.

Bootstrapping is the most intricate FHE operation (paper Section III-B);
these tests exercise each stage independently and the full pipeline
end-to-end.  Tolerances are loose by design: at toy parameters the sine
approximation and keyswitch noise dominate, and the paper's claim under
test is structural (level refresh + approximate message preservation),
not production precision.
"""

import numpy as np
import pytest

from repro.ckks import Bootstrapper, CkksContext, toy_parameters, Evaluator

BOOT_TOL = 5e-2


class TestStages:
    def test_mod_raise_gains_limbs_and_declares_q0(self, boot_fhe, bootstrapper, rng):
        bs, keys = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        raised = bs.mod_raise(ct)
        assert raised.level == boot_fhe.context.max_level
        assert raised.scale == float(bs.q0)

    def test_mod_raise_preserves_message_mod_q0(self, boot_fhe, bootstrapper, rng):
        """Decrypting the raised ciphertext mod q0 recovers the message."""
        bs, keys = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        raised = bs.mod_raise(ct)
        pt = boot_fhe.decryptor.decrypt(raised)
        coeffs = pt.poly.to_int_coeffs(centered=True)
        q0 = bs.q0
        reduced = np.array(
            [((int(c) + q0 // 2) % q0) - q0 // 2 for c in coeffs],
            dtype=np.float64,
        )
        slots = boot_fhe.context.encoder.coeffs_to_slots(reduced)
        original_scale = boot_fhe.params.scale
        assert np.max(np.abs(slots / original_scale - z)) < 5e-3

    def test_coeff_to_slot(self, boot_fhe, bootstrapper, rng):
        bs, keys = bootstrapper
        n = boot_fhe.params.slot_count
        z = rng.normal(scale=0.3, size=n)
        ct = boot_fhe.encrypt(z, level=0)
        raised = bs.mod_raise(ct)
        packed = bs.coeff_to_slot(raised, keys)
        pt = boot_fhe.decryptor.decrypt(raised)
        u = pt.poly.to_int_coeffs(centered=True).astype(np.float64)
        expect = (u[:n] + 1j * u[n:]) / bs.q0
        got = boot_fhe.decrypt(packed)
        assert np.max(np.abs(got - expect)) < 1e-3

    def test_split_real_imag(self, boot_fhe, bootstrapper, rng):
        bs, keys = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        packed = bs.coeff_to_slot(bs.mod_raise(ct), keys)
        w = boot_fhe.decrypt(packed)
        re, im = bs.split_real_imag(packed, keys)
        assert np.max(np.abs(boot_fhe.decrypt(re) - w.real)) < 1e-3
        assert np.max(np.abs(boot_fhe.decrypt(im) - w.imag)) < 1e-3
        # Scale is re-normalized to the canonical scale.
        assert abs(re.scale - boot_fhe.params.scale) < 1.0

    def test_eval_exp_sin(self, boot_fhe, bootstrapper, rng):
        bs, keys = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        packed = bs.coeff_to_slot(bs.mod_raise(ct), keys)
        re, _ = bs.split_real_imag(packed, keys)
        t = boot_fhe.decrypt(re).real
        sin_ct = bs.eval_exp_sin(re, keys)
        got = boot_fhe.decrypt(sin_ct).real
        assert np.max(np.abs(got - np.sin(2 * np.pi * t))) < 1e-2


class TestFullBootstrap:
    def test_level_refresh(self, boot_fhe, bootstrapper, rng):
        bs, keys = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        out = bs.bootstrap(ct, keys)
        assert out.level > ct.level

    def test_message_preserved(self, boot_fhe, bootstrapper, rng):
        bs, keys = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        out = bs.bootstrap(ct, keys)
        assert np.max(np.abs(boot_fhe.decrypt(out) - z)) < BOOT_TOL

    def test_output_supports_multiplication(self, boot_fhe, bootstrapper, rng):
        """The point of bootstrapping: the refreshed ciphertext can multiply."""
        bs, keys = bootstrapper
        z = rng.uniform(0.1, 0.5, boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        out = bs.bootstrap(ct, keys)
        ev = boot_fhe.evaluator
        squared = ev.rescale(ev.square(out, boot_fhe.relin_key))
        assert np.max(np.abs(boot_fhe.decrypt(squared) - z ** 2)) < BOOT_TOL

    def test_minimum_levels_estimate_is_honest(self, boot_fhe, bootstrapper, rng):
        bs, keys = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=0)
        out = bs.bootstrap(ct, keys)
        consumed = boot_fhe.context.max_level - out.level
        assert consumed <= bs.minimum_levels()


class TestValidation:
    def test_requires_sparse_secret(self):
        params = toy_parameters(poly_degree=128, num_scale_moduli=4)
        ctx = CkksContext(params)
        with pytest.raises(ValueError):
            Bootstrapper(ctx, Evaluator(ctx))
