"""Unit tests for NTT-friendly prime generation."""

import pytest

from repro.math.primes import find_ntt_primes, is_ntt_friendly


class TestIsNttFriendly:
    def test_accepts_known_friendly_prime(self):
        # 12289 = 3 * 2^12 + 1 supports N up to 2048 (2N = 4096 divides 12288)
        assert is_ntt_friendly(12289, 2048)

    def test_rejects_wrong_congruence(self):
        assert not is_ntt_friendly(12289, 4096)

    def test_rejects_composite(self):
        # 4097 = 17 * 241 satisfies the congruence for N=2048 but is composite.
        assert 4097 % (2 * 2048) == 1
        assert not is_ntt_friendly(4097, 2048)


class TestFindNttPrimes:
    def test_returns_requested_count_with_congruence(self):
        primes = find_ntt_primes(poly_degree=1024, bit_size=30, count=5)
        assert len(primes) == 5
        assert len(set(primes)) == 5
        for q in primes:
            assert is_ntt_friendly(q, 1024)
            assert 29 <= q.bit_length() <= 31

    def test_exclusion_produces_disjoint_sets(self):
        first = find_ntt_primes(256, 25, 3)
        second = find_ntt_primes(256, 25, 3, exclude=tuple(first))
        assert not set(first) & set(second)

    def test_rejects_non_power_of_two_degree(self):
        with pytest.raises(ValueError):
            find_ntt_primes(poly_degree=100, bit_size=30, count=1)

    def test_rejects_too_small_bit_size(self):
        with pytest.raises(ValueError):
            find_ntt_primes(poly_degree=4096, bit_size=8, count=1)
