"""Unit tests for the task-mapping strategies (paper Section III)."""

import math

import pytest

from repro.cost import CONVBN_UNIT, OpCostModel
from repro.hw import HYDRA_CARD, hydra_cluster
from repro.sched import (
    group_assignments,
    map_bsgs_matvec,
    map_distributed_units,
    map_polynomial_tree,
    partition_groups,
)
from repro.sched.nonlinear import polynomial_tree_depth
from repro.sim import ProgramBuilder, Simulator


@pytest.fixture(scope="module")
def cost():
    return OpCostModel(HYDRA_CARD)


def _simulate(builder, n):
    return Simulator(hydra_cluster(1, n)).run(builder.build())


class TestGroups:
    def test_fewer_jobs_than_nodes(self):
        groups, rounds = partition_groups(8, 2)
        assert rounds == 1
        assert [len(g) for g in groups] == [4, 4]
        assert groups[0] == [0, 1, 2, 3]

    def test_group_sizes_are_powers_of_two(self):
        groups, _ = partition_groups(12, 5)
        for g in groups:
            assert len(g) & (len(g) - 1) == 0

    def test_more_jobs_than_nodes(self):
        groups, rounds = partition_groups(4, 10)
        assert rounds == 3
        assert [len(g) for g in groups] == [1, 1, 1, 1]

    def test_assignments_cover_all_jobs_exactly(self):
        for nodes, jobs in ((8, 3), (8, 8), (4, 10), (64, 18), (2, 1)):
            total = sum(c for _, c in group_assignments(nodes, jobs))
            assert total == jobs, (nodes, jobs)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_groups(0, 1)
        with pytest.raises(ValueError):
            partition_groups(4, 0)


class TestDistributedUnits:
    def test_single_node_runs_everything(self, cost):
        b = ProgramBuilder(1)
        work = map_distributed_units(
            b, cost, units=100, unit_bundle=CONVBN_UNIT, level=20,
            output_ciphertexts=8, tag="ConvBN",
        )
        res = _simulate(b, 1)
        assert res.makespan == pytest.approx(work)
        assert res.bytes_transferred == 0

    def test_near_linear_speedup(self, cost):
        times = {}
        for n in (1, 4, 8):
            b = ProgramBuilder(n)
            map_distributed_units(
                b, cost, units=1024, unit_bundle=CONVBN_UNIT, level=20,
                output_ciphertexts=8, tag="ConvBN",
            )
            times[n] = _simulate(b, n).makespan
        assert times[1] / times[4] > 3.2
        assert times[1] / times[8] > 6.0

    def test_uneven_units_distributed(self, cost):
        b = ProgramBuilder(4)
        map_distributed_units(
            b, cost, units=7, unit_bundle=CONVBN_UNIT, level=20,
            output_ciphertexts=4, tag="x",
        )
        res = _simulate(b, 4)
        # 7 units over 4 nodes: busiest node has 2.
        unit = cost.bundle_time(CONVBN_UNIT, 20)
        assert res.makespan >= 2 * unit

    def test_communication_mostly_hidden(self, cost):
        """Paper Section III-A: conv transfers overlap with computation."""
        b = ProgramBuilder(8)
        map_distributed_units(
            b, cost, units=1024, unit_bundle=CONVBN_UNIT, level=20,
            output_ciphertexts=8, tag="x",
        )
        res = _simulate(b, 8)
        assert res.comm_overhead_fraction < 0.15

    def test_zero_units_rejected(self, cost):
        b = ProgramBuilder(2)
        with pytest.raises(ValueError):
            map_distributed_units(
                b, cost, units=0, unit_bundle=CONVBN_UNIT, level=20,
                output_ciphertexts=1, tag="x",
            )


class TestBsgsMatvec:
    def test_single_node(self, cost):
        b = ProgramBuilder(1)
        map_bsgs_matvec(b, cost, [0], level=20, bs=4, gs=8, tag="FC")
        res = _simulate(b, 1)
        rot = cost.rotation(20).seconds
        assert res.makespan > 4 * rot  # at least the baby steps

    def test_giant_steps_distribute(self, cost):
        t1 = ProgramBuilder(1)
        map_bsgs_matvec(t1, cost, [0], level=20, bs=2, gs=32, tag="FC")
        one = _simulate(t1, 1).makespan
        t4 = ProgramBuilder(4)
        map_bsgs_matvec(t4, cost, [0, 1, 2, 3], level=20, bs=2, gs=32,
                        tag="FC")
        four = _simulate(t4, 4).makespan
        # Replicated baby steps and the aggregation tree bound the
        # speedup below card count (Eq. 1's structure).
        assert one / four > 1.7

    def test_baby_steps_do_not_distribute(self, cost):
        """bs replicates on every card (paper Section III-B point 1)."""
        b = ProgramBuilder(2)
        map_bsgs_matvec(b, cost, [0, 1], level=20, bs=8, gs=2, tag="FC")
        res = _simulate(b, 2)
        rot = cost.rotation(20).seconds
        for node_stats in res.nodes:
            assert node_stats.compute_busy >= 8 * rot * 0.9

    def test_tree_aggregation_transfers(self, cost):
        b = ProgramBuilder(4)
        map_bsgs_matvec(b, cost, [0, 1, 2, 3], level=20, bs=2, gs=8,
                        tag="FC", broadcast_result=False)
        res = _simulate(b, 4)
        # Tree over 4 nodes: 2 + 1 = 3 aggregation transfers.
        assert res.transfers == 3

    def test_group_size_must_be_power_of_two(self, cost):
        b = ProgramBuilder(3)
        with pytest.raises(ValueError):
            map_bsgs_matvec(b, cost, [0, 1, 2], level=20, bs=2, gs=4,
                            tag="FC")

    def test_invalid_bs_gs(self, cost):
        b = ProgramBuilder(1)
        with pytest.raises(ValueError):
            map_bsgs_matvec(b, cost, [0], level=20, bs=0, gs=4, tag="FC")


class TestPolynomialTree:
    def test_depth_rule(self):
        """tree_depth = min(poly_depth - 2, card_depth) from Alg. 1."""
        assert polynomial_tree_depth(degree=59, num_cards=64) == 4
        assert polynomial_tree_depth(degree=59, num_cards=4) == 2
        assert polynomial_tree_depth(degree=7, num_cards=64) == 1
        assert polynomial_tree_depth(degree=3, num_cards=64) == 0

    def test_single_card(self, cost):
        b = ProgramBuilder(1)
        map_polynomial_tree(b, cost, [0], degree=59, level=20, tag="NL")
        res = _simulate(b, 1)
        assert res.makespan > 0
        assert res.bytes_transferred == 0

    def test_multi_card_faster_than_single(self, cost):
        b1 = ProgramBuilder(1)
        map_polynomial_tree(b1, cost, [0], degree=59, level=20, tag="NL")
        one = _simulate(b1, 1).makespan
        b4 = ProgramBuilder(4)
        map_polynomial_tree(b4, cost, [0, 1, 2, 3], degree=59, level=20,
                            tag="NL")
        four = _simulate(b4, 4).makespan
        assert four < one

    def test_small_degree_never_decomposes(self, cost):
        """Sub-polynomials of degree <= 4 stay on one card (Alg. 1)."""
        b = ProgramBuilder(8)
        map_polynomial_tree(b, cost, list(range(8)), degree=3, level=20,
                            tag="NL")
        res = _simulate(b, 8)
        assert res.bytes_transferred == 0

    def test_result_lands_on_group_root(self, cost):
        b = ProgramBuilder(4)
        idx = map_polynomial_tree(b, cost, [0, 1, 2, 3], degree=15,
                                  level=20, tag="NL")
        assert idx == len(b.programs[0].compute) - 1

    def test_invalid_degree(self, cost):
        b = ProgramBuilder(1)
        with pytest.raises(ValueError):
            map_polynomial_tree(b, cost, [0], degree=0, level=20, tag="NL")
