"""Unit tests for bootstrapping scheduling: Eq. 1, Table V, mapping."""

import math

import pytest

from repro.cost import OpCostModel
from repro.hw import HYDRA_CARD, hydra_cluster
from repro.sched import (
    DftParameters,
    choose_boot_group_size,
    dft_time_model,
    estimate_bootstrap_time,
    map_bootstrap,
    optimal_dft_parameters,
)
from repro.sim import ProgramBuilder, Simulator


@pytest.fixture(scope="module")
def cost():
    return OpCostModel(HYDRA_CARD)


class TestDftParameters:
    def test_bs_must_divide_2r(self):
        with pytest.raises(ValueError):
            DftParameters(radices=(16,), baby_steps=(3,))

    def test_giant_steps(self):
        p = DftParameters(radices=(16, 16, 16), baby_steps=(4, 4, 4))
        assert p.giant_steps == (8, 8, 8)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DftParameters(radices=(16, 16), baby_steps=(4,))


class TestEq1Model:
    def test_single_card_has_no_comm_term(self, cost):
        t1 = dft_time_model(cost, 30, radix=16, bs=4, num_cards=1)
        rot = cost.rotation(30).seconds
        pmult = cost.pmult(30).seconds
        hadd = cost.hadd(30).seconds
        # T_bs + T_gs + local accumulation per Eq. 1.
        gs = 8
        expected = (4 * rot
                    + (4 * pmult + 3 * hadd + rot) * gs
                    + (gs - 1) * hadd)
        assert t1 == pytest.approx(expected)

    def test_more_cards_reduce_time(self, cost):
        times = [dft_time_model(cost, 30, 64, 2, n) for n in (1, 4, 16)]
        assert times[0] > times[1] > times[2]

    def test_invalid_bs_rejected(self, cost):
        with pytest.raises(ValueError):
            dft_time_model(cost, 30, radix=16, bs=3, num_cards=1)


class TestTableV:
    """Parameter-selection shape from paper Table V."""

    def test_radix_exponents_sum_to_slots(self, cost):
        for slots_log in (12, 13, 14, 15):
            params, _ = optimal_dft_parameters(cost, slots_log, 1)
            assert sum(int(math.log2(r)) for r in params.radices) \
                == slots_log

    def test_bs_shrinks_with_more_cards(self, cost):
        """Hydra-L chooses smaller bs than Hydra-M than Hydra-S: under
        more computing nodes a larger gs can exert its parallelism
        (paper Section V-G)."""
        for slots_log in (12, 15):
            bs_by_cards = {}
            for cards in (1, 8, 64):
                params, _ = optimal_dft_parameters(cost, slots_log, cards)
                bs_by_cards[cards] = sum(params.baby_steps)
            assert bs_by_cards[64] <= bs_by_cards[8] <= bs_by_cards[1]

    def test_optimum_beats_fixed_choice(self, cost):
        params, best = optimal_dft_parameters(cost, 12, 8)
        fixed = sum(
            dft_time_model(cost, max(0, cost.params.max_level - i),
                           16, 8, 8)
            for i in range(3)
        )
        assert best <= fixed + 1e-12


class TestGroupSizing:
    def test_many_jobs_prefer_small_groups(self, cost):
        g = choose_boot_group_size(cost, 64, num_jobs=64, slots_log=15)
        assert g == 1

    def test_single_job_prefers_wider_group(self, cost):
        g1 = choose_boot_group_size(cost, 64, num_jobs=1, slots_log=15)
        g64 = choose_boot_group_size(cost, 64, num_jobs=64, slots_log=15)
        assert g1 > g64

    def test_slow_fabric_prefers_narrow_groups(self, cost):
        fast = choose_boot_group_size(cost, 8, 1, 15,
                                      comm_bandwidth=12.5e9)
        slow = choose_boot_group_size(cost, 8, 1, 15,
                                      comm_bandwidth=1.25e8)
        assert slow <= fast

    def test_estimate_monotone_left_of_optimum(self, cost):
        t1 = estimate_bootstrap_time(cost, 15, 1)
        t4 = estimate_bootstrap_time(cost, 15, 4)
        assert t4 < t1


class TestMapBootstrap:
    def _run(self, n_cards, group):
        cost = OpCostModel(HYDRA_CARD)
        b = ProgramBuilder(n_cards)
        map_bootstrap(b, cost, group, tag="Boot")
        res = Simulator(hydra_cluster(1, n_cards)).run(b.build())
        return res

    def test_single_card_boot(self):
        res = self._run(1, [0])
        assert res.makespan > 0
        assert res.bytes_transferred == 0

    def test_group_boot_faster_than_single(self):
        one = self._run(1, [0]).makespan
        eight = self._run(8, list(range(8))).makespan
        assert eight < one

    def test_boot_transfers_are_bounded(self):
        """Aggregation trees + result multicasts, not all-to-all."""
        res = self._run(8, list(range(8)))
        # 6 matvecs x (7 tree transfers + 7 multicast recvs) + EvaExp
        # traffic; far below all-to-all (8*7 per exchange x many rounds).
        assert res.transfers < 200

    def test_level_accounting(self):
        cost = OpCostModel(HYDRA_CARD)
        b = ProgramBuilder(1)
        end_level = map_bootstrap(b, cost, [0], tag="Boot")
        consumed = cost.params.max_level - end_level
        assert 10 <= consumed <= 16  # 3 + ~6 + 2 + 3
