"""The parallel executor: determinism, dedup, manifests, and the
``bench`` / ``sweep --jobs`` CLI paths."""

import json

import pytest

from repro.core.cli import main
from repro.hw import hydra_cluster
from repro.runtime import (
    MemoryCache,
    RunRequest,
    execute,
    paper_grid,
    run_one,
)


def _small_grid(with_energy=True):
    """The full grid shape at small scale: 2 systems x 2 benchmarks."""
    clusters = (hydra_cluster(1, 1), hydra_cluster(1, 2))
    benchmarks = ("resnet18", "bert_base")
    return [
        RunRequest(benchmark=b, cluster=c, with_energy=with_energy)
        for c in clusters
        for b in benchmarks
    ]


def _dumps(outcome):
    return [
        json.dumps(rr.result.to_dict(), sort_keys=True)
        for rr in outcome
    ]


class _Capture:
    def __init__(self):
        self.lines = []

    def __call__(self, text=""):
        self.lines.append(str(text))

    @property
    def text(self):
        return "\n".join(self.lines)


class TestDeterminism:
    def test_parallel_matches_serial_byte_identical(self):
        requests = _small_grid()
        serial = execute(requests, jobs=1, cache=MemoryCache())
        parallel = execute(requests, jobs=4, cache=MemoryCache())
        assert _dumps(serial) == _dumps(parallel)

    def test_metrics_merge_bit_identical_serial_vs_jobs4(self):
        requests = _small_grid(with_energy=False)
        serial = execute(requests, jobs=1, cache=MemoryCache())
        parallel = execute(requests, jobs=4, cache=MemoryCache())
        assert serial.manifest.metrics is not None
        assert json.dumps(serial.manifest.metrics, sort_keys=True) \
            == json.dumps(parallel.manifest.metrics, sort_keys=True)
        # Snapshots must actually carry simulation counters.
        counters = serial.manifest.metrics["counters"]
        assert counters["sim.engine.runs"][""] > 0
        assert counters["runtime.cache.misses"][""] == len(requests)

    def test_manifest_metrics_embedded_in_json(self):
        requests = _small_grid(with_energy=False)
        outcome = execute(requests, jobs=2, cache=MemoryCache())
        payload = json.loads(outcome.manifest.to_json())
        assert "sim.engine.runs" in payload["metrics"]["counters"]
        simulated = [r for r in payload["records"] if not r["cache_hit"]]
        assert all(r["metrics"] is not None for r in simulated)

    def test_cache_hits_carry_no_fresh_metrics(self):
        request = RunRequest(benchmark="resnet18",
                             cluster=hydra_cluster(1, 1),
                             with_energy=False)
        cache = MemoryCache()
        execute([request], jobs=1, cache=cache)
        second = execute([request], jobs=1, cache=cache)
        assert second.manifest.hits == 1
        counters = second.manifest.metrics["counters"]
        assert counters["runtime.cache.hits"][""] == 1
        assert "sim.engine.runs" not in counters

    def test_results_in_request_order(self):
        requests = _small_grid(with_energy=False)
        outcome = execute(requests, jobs=4, cache=MemoryCache())
        for request, rr in zip(requests, outcome):
            assert rr.request is request
            assert rr.result.model_name == request.benchmark
            assert rr.result.cluster_name == request.cluster.name


class TestCachingAndDedup:
    def test_second_execute_is_all_hits(self):
        requests = _small_grid(with_energy=False)
        cache = MemoryCache()
        first = execute(requests, jobs=2, cache=cache)
        assert first.manifest.hits == 0
        assert first.manifest.misses == len(requests)
        second = execute(requests, jobs=2, cache=cache)
        assert second.manifest.hits == len(requests)
        assert second.manifest.hit_rate == 1.0
        assert second.manifest.simulated_seconds == 0.0
        assert _dumps(first) == _dumps(second)

    def test_duplicate_requests_simulated_once(self):
        request = RunRequest(benchmark="resnet18",
                             cluster=hydra_cluster(1, 1),
                             with_energy=False)
        cache = MemoryCache()
        outcome = execute([request, request], jobs=1, cache=cache)
        assert cache.stats.puts == 1
        assert outcome[0].result is outcome[1].result

    def test_no_cache_bypasses_storage(self):
        request = RunRequest(benchmark="resnet18",
                             cluster=hydra_cluster(1, 1),
                             with_energy=False)
        cache = MemoryCache()
        execute([request], jobs=1, cache=cache, use_cache=False)
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_run_one_miss_then_hit(self):
        request = RunRequest(benchmark="resnet18",
                             cluster=hydra_cluster(1, 1),
                             with_energy=False)
        cache = MemoryCache()
        first = run_one(request, cache=cache)
        assert not first.cache_hit and first.seconds > 0
        second = run_one(request, cache=cache)
        assert second.cache_hit and second.seconds == 0.0
        assert second.result is first.result


class TestManifest:
    def test_records_cover_every_request(self):
        requests = _small_grid(with_energy=False)
        outcome = execute(requests, jobs=2, cache=MemoryCache())
        manifest = outcome.manifest
        assert manifest.runs == len(requests)
        assert manifest.jobs == 2
        assert manifest.wall_seconds > 0
        assert 1 <= manifest.workers_used <= 2
        payload = json.loads(manifest.to_json())
        assert payload["runs"] == len(requests)
        assert len(payload["records"]) == len(requests)
        for record in payload["records"]:
            assert record["key"] and record["benchmark"]

    def test_manifest_save(self, tmp_path):
        outcome = execute(
            [RunRequest(benchmark="resnet18",
                        cluster=hydra_cluster(1, 1),
                        with_energy=False)],
            jobs=1, cache=MemoryCache(),
        )
        path = tmp_path / "manifest.json"
        outcome.manifest.save(path)
        assert json.loads(path.read_text())["runs"] == 1

    def test_by_label(self):
        requests = _small_grid(with_energy=False)
        outcome = execute(requests, jobs=1, cache=MemoryCache())
        table = outcome.by_label()
        assert len(table) == len(requests)
        for request in requests:
            assert (request.cluster.name, request.benchmark) in table


class TestPaperGrid:
    def test_full_grid_shape(self):
        requests = paper_grid()
        assert len(requests) == 28  # 7 systems x 4 benchmarks
        assert len({r.key() for r in requests}) == 28

    def test_subset_selection(self):
        requests = paper_grid(systems=["Hydra-S"],
                              benchmarks=["resnet18", "resnet50"])
        assert [r.label for r in requests] == [
            "resnet18 @ Hydra-S", "resnet50 @ Hydra-S",
        ]


class TestCli:
    def test_bench_json_and_persistent_hits(self, tmp_path):
        argv = ["bench", "--jobs", "2", "-s", "Hydra-S", "Hydra-M",
                "-b", "resnet18", "--no-energy", "--json",
                "--cache-dir", str(tmp_path)]
        first_out = _Capture()
        assert main(argv, out=first_out) == 0
        first = json.loads(first_out.text)
        assert first["manifest"]["cache_hits"] == 0
        assert first["manifest"]["cache_misses"] == 2

        second_out = _Capture()
        assert main(argv, out=second_out) == 0
        second = json.loads(second_out.text)
        assert second["manifest"]["cache_hits"] == 2
        assert second["manifest"]["hit_rate"] == 1.0
        assert [r["total_seconds"] for r in second["results"]] == [
            r["total_seconds"] for r in first["results"]
        ]

    def test_bench_table_output(self, tmp_path):
        out = _Capture()
        code = main(["bench", "-s", "Hydra-S", "-b", "resnet18",
                     "--no-energy", "--cache-dir", str(tmp_path)],
                    out=out)
        assert code == 0
        assert "Hydra-S" in out.text
        assert "1 runs" in out.text
        assert str(tmp_path) in out.text

    def test_bench_no_cache(self, tmp_path):
        out = _Capture()
        code = main(["bench", "-s", "Hydra-S", "-b", "resnet18",
                     "--no-energy", "--no-cache", "--json"], out=out)
        assert code == 0
        payload = json.loads(out.text)
        assert payload["manifest"]["cache_hits"] == 0

    def test_sweep_jobs(self):
        out = _Capture()
        code = main(["sweep", "-b", "resnet18", "--cards", "1", "2",
                     "--jobs", "2"], out=out)
        assert code == 0
        assert "scaling" in out.text

    def test_sweep_jobs_matches_serial(self):
        serial, parallel = _Capture(), _Capture()
        base = ["sweep", "-b", "resnet18", "--cards", "1", "2", "4"]
        assert main(base + ["--jobs", "1"], out=serial) == 0
        assert main(base + ["--jobs", "3"], out=parallel) == 0
        assert serial.text == parallel.text


class TestRemovedShims:
    def test_pre_runtime_helpers_are_gone(self):
        import repro
        import repro.core

        assert not hasattr(repro.core, "run_benchmark")
        assert not hasattr(repro.core, "clear_run_cache")
        assert not hasattr(repro, "run_benchmark")

    def test_run_is_keyword_only_after_benchmark(self):
        from repro.core import HydraSystem

        with pytest.raises(TypeError):
            HydraSystem.hydra_s().run("resnet18", False)
