"""Unit tests for the RNS context and base conversion."""

import numpy as np
import pytest

from repro.poly import RnsContext


@pytest.fixture(scope="module")
def rns():
    return RnsContext.create(
        poly_degree=64,
        first_modulus_bits=29,
        scale_modulus_bits=25,
        num_scale_moduli=3,
        special_modulus_bits=30,
        num_special_moduli=2,
    )


class TestConstruction:
    def test_chain_layout(self, rns):
        assert len(rns.data_moduli) == 4  # first + 3 scale primes
        assert len(rns.special_moduli) == 2
        assert rns.moduli == rns.data_moduli + rns.special_moduli
        assert rns.data_indices == (0, 1, 2, 3)
        assert rns.special_indices == (4, 5)

    def test_moduli_are_ntt_friendly(self, rns):
        for q in rns.moduli:
            assert q % (2 * rns.poly_degree) == 1

    def test_duplicate_moduli_rejected(self):
        with pytest.raises(ValueError):
            RnsContext(64, (12289, 12289), ())

    def test_modulus_product(self, rns):
        assert rns.modulus_product((0, 1)) == rns.moduli[0] * rns.moduli[1]
        assert rns.modulus_product(()) == 1

    def test_log2_modulus_product(self, rns):
        got = rns.log2_modulus_product((0, 1, 2))
        expect = float(np.log2(rns.moduli[0]))
        expect += float(np.log2(rns.moduli[1]))
        expect += float(np.log2(rns.moduli[2]))
        assert abs(got - expect) < 1e-9


class TestBaseConvert:
    def test_exact_for_small_values(self, rns):
        """Values far from Q/2 convert exactly between bases."""
        n = rns.poly_degree
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2 ** 40, n)
        from_idx = (0, 1)
        data = np.stack([
            np.array([int(v) % rns.moduli[i] for v in values], dtype=np.uint64)
            for i in from_idx
        ])
        out = rns.base_convert(data, from_idx, (2, 3))
        for row, j in enumerate((2, 3)):
            expect = np.array(
                [int(v) % rns.moduli[j] for v in values], dtype=np.uint64
            )
            assert np.array_equal(out[row], expect)

    def test_single_limb_source_is_centered(self, rns):
        """Residues above q/2 convert as their negative representative."""
        n = rns.poly_degree
        rng = np.random.default_rng(1)
        q0 = rns.moduli[0]
        q1 = rns.moduli[1]
        vals = rng.integers(0, q0, n, dtype=np.uint64)
        out = rns.base_convert(vals[None, :], (0,), (1,))
        centered = np.where(
            vals.astype(np.int64) > q0 // 2,
            vals.astype(np.int64) - q0,
            vals.astype(np.int64),
        )
        expect = np.mod(centered, q1).astype(np.uint64)
        assert np.array_equal(out[0], expect)

    def test_shape_validation(self, rns):
        with pytest.raises(ValueError):
            rns.base_convert(
                np.zeros((3, rns.poly_degree), dtype=np.uint64), (0, 1), (2,)
            )

    def test_conversion_tables_cached(self, rns):
        t1 = rns._conversion_tables((0, 1), (2,))
        t2 = rns._conversion_tables((0, 1), (2,))
        assert t1 is t2
