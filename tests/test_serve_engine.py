"""Serving DES engine tests: dispatch, SLOs, and the fleet comparison.

Most tests drive :func:`repro.serve.simulate_fleet` with hand-built
:class:`~repro.serve.ServiceProfile` objects so no planning simulation
runs; the fleet-comparison tests at the bottom plan real profiles once
per module (shared across dispatch modes through the runtime cache).
"""

import pytest

from repro.serve import (
    ServiceProfile,
    Scenario,
    TenantSpec,
    prepare_profiles,
    simulate_fleet,
    validate_serve_report,
)
from repro.serve.dispatch import ClusterState
from repro.serve.scenario import (
    BatchConfig,
    Overheads,
    load_scenario,
    resolve_fleet_cluster,
)


def _profile(cluster_name, compute_seconds=2.0, model="resnet18"):
    return ServiceProfile(
        model=model, params="paper", cluster_name=cluster_name,
        compute_seconds=compute_seconds, ciphertext_bytes=1e6,
        io_bandwidth=16e9, cache_hit=False,
    )


def _scenario(**kw):
    kw.setdefault("name", "unit")
    kw.setdefault("duration_seconds", 40.0)
    kw.setdefault("seed", 5)
    kw.setdefault("tenants", (
        TenantSpec(name="t0", model="resnet18", process="uniform",
                   rate_rps=0.5, deadline_seconds=30.0),
    ))
    kw.setdefault("fleets", {"f": ("Hydra-S",)})
    kw.setdefault("batch", BatchConfig(max_requests=4, window_seconds=1.0))
    kw.setdefault("overheads", Overheads(batch_setup_seconds=0.0))
    return Scenario(**kw)


def _profiles_for(scenario):
    profiles = {}
    for entries in scenario.fleets.values():
        for entry in entries:
            for tenant in scenario.tenants:
                key = (tenant.model, tenant.params, entry)
                profiles[key] = _profile(entry, model=tenant.model)
    return profiles


class TestEngine:
    def test_all_arrivals_accounted(self):
        scenario = _scenario()
        report = simulate_fleet(scenario, "f", _profiles_for(scenario))
        stats = report["tenants"]["t0"]
        assert stats["arrivals"] == 20
        assert (stats["completed"] + stats["rejected"]
                == stats["arrivals"])
        assert stats["rejected"] == 0
        assert report["queue"]["rejected"] == 0

    def test_report_is_deterministic_and_valid(self):
        scenario = _scenario()
        profiles = _profiles_for(scenario)
        a = simulate_fleet(scenario, "f", profiles)
        b = simulate_fleet(scenario, "f", profiles)
        assert a == b
        from repro.serve.report import build_report

        wrapped = build_report(scenario, ["f"], {"f": a})
        assert wrapped["schema"] == "repro.serve/v3"
        assert wrapped["telemetry"]["mode"] == "streaming"
        validate_serve_report(wrapped)

    def test_overload_rejects_and_misses_deadlines(self):
        # One slow cluster, arrivals far faster than service: the
        # bounded queue must shed load and admitted tails must miss SLO.
        scenario = _scenario(
            tenants=(TenantSpec(name="t0", model="resnet18",
                                process="uniform", rate_rps=2.0,
                                deadline_seconds=5.0),),
            max_queue=4,
            batch=BatchConfig(max_requests=1, window_seconds=0.0),
        )
        profiles = {("resnet18", "paper", "Hydra-S"):
                    _profile("Hydra-S", compute_seconds=10.0)}
        report = simulate_fleet(scenario, "f", profiles)
        stats = report["tenants"]["t0"]
        assert stats["rejected"] > 0
        assert stats["deadline_misses"] > 0
        assert report["goodput_rps"] < report["throughput_rps"]

    def test_batching_amortizes_service(self):
        # 4 requests arriving together: one batch of 4 at compute cost
        # ~1x beats four sequential singleton batches.
        tenants = (TenantSpec(name="t0", model="resnet18",
                              process="uniform", rate_rps=4.0),)
        profiles = {("resnet18", "paper", "Hydra-S"):
                    _profile("Hydra-S", compute_seconds=3.0)}
        batched = simulate_fleet(
            _scenario(duration_seconds=1.0, tenants=tenants,
                      batch=BatchConfig(max_requests=4,
                                        window_seconds=1.0)),
            "f", profiles)
        unbatched = simulate_fleet(
            _scenario(duration_seconds=1.0, tenants=tenants,
                      batch=BatchConfig(max_requests=1,
                                        window_seconds=0.0)),
            "f", profiles)
        assert batched["clusters"][0]["batches"] == 1
        assert unbatched["clusters"][0]["batches"] == 4
        assert batched["makespan_seconds"] < unbatched["makespan_seconds"]

    def test_work_spreads_across_fleet_replicas(self):
        scenario = _scenario(
            fleets={"f": ("Hydra-S", "Hydra-S")},
            tenants=(TenantSpec(name="t0", model="resnet18",
                                process="uniform", rate_rps=1.0),),
            batch=BatchConfig(max_requests=1, window_seconds=0.0),
        )
        profiles = {("resnet18", "paper", "Hydra-S"):
                    _profile("Hydra-S", compute_seconds=1.5)}
        report = simulate_fleet(scenario, "f", profiles)
        per_cluster = [c["requests"] for c in report["clusters"]]
        assert sum(per_cluster) == 40
        assert min(per_cluster) > 0

    def test_utilization_within_bounds(self):
        scenario = _scenario()
        report = simulate_fleet(scenario, "f", _profiles_for(scenario))
        for cluster in report["clusters"]:
            assert 0.0 <= cluster["utilization"] <= 1.0 + 1e-9


class TestClusterState:
    def _state(self, mode):
        _, spec = resolve_fleet_cluster("Hydra-S")
        return ClusterState(index=0, name="Hydra-S", replica=0, spec=spec,
                            mode=mode)

    def test_serialized_occupies_exclusively(self):
        state = self._state("serialized")
        assert state.inflight_limit == 1
        first = state.plan_batch(0.0, t_in=1.0, t_compute=4.0, t_out=1.0)
        state.commit_batch(first, size=1)
        assert first.completion == pytest.approx(6.0)
        assert not state.has_free_slot
        state.inflight -= 1
        second = state.plan_batch(0.0, t_in=1.0, t_compute=4.0, t_out=1.0)
        # Serialized: nothing overlaps the previous batch's drain.
        assert second.ingress_start == pytest.approx(6.0)

    def test_pipelined_overlaps_io_with_compute(self):
        state = self._state("pipelined")
        assert state.inflight_limit == 2
        first = state.plan_batch(0.0, t_in=1.0, t_compute=4.0, t_out=1.0)
        state.commit_batch(first, size=1)
        second = state.plan_batch(0.0, t_in=1.0, t_compute=4.0, t_out=1.0)
        # Next batch streams in while the first computes...
        assert second.ingress_start == pytest.approx(1.0)
        # ...and its compute queues right behind the first.
        assert second.compute_start == pytest.approx(first.compute_end)
        assert second.completion < first.completion + 6.0


@pytest.fixture(scope="module")
def fleet_scenario():
    # The committed scenario, untouched: the acceptance property below
    # is pinned on exactly what `repro serve fleet_m_vs_l` runs.
    return load_scenario("fleet_m_vs_l")


@pytest.fixture(scope="module")
def fleet_profiles(fleet_scenario):
    profiles, _ = prepare_profiles(fleet_scenario, jobs=4)
    return profiles


class TestFleetComparison:
    """The PR's pinned acceptance property, on the committed scenario."""

    def test_pipelined_beats_serialized_goodput(self, fleet_scenario,
                                                fleet_profiles):
        for fleet in fleet_scenario.fleets:
            pipelined = simulate_fleet(
                fleet_scenario.override(dispatch="pipelined"),
                fleet, fleet_profiles)
            serialized = simulate_fleet(
                fleet_scenario.override(dispatch="serialized"),
                fleet, fleet_profiles)
            assert pipelined["goodput_rps"] > serialized["goodput_rps"], (
                f"fleet {fleet!r}: pipelined dispatch must strictly beat "
                f"serialized"
            )

    def test_fleets_see_identical_offered_load(self, fleet_scenario,
                                               fleet_profiles):
        reports = {
            fleet: simulate_fleet(fleet_scenario, fleet, fleet_profiles)
            for fleet in fleet_scenario.fleets
        }
        arrivals = {
            fleet: {name: t["arrivals"]
                    for name, t in report["tenants"].items()}
            for fleet, report in reports.items()
        }
        first, second = arrivals.values()
        assert first == second
