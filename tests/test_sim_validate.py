"""Unit tests for static program validation."""

import pytest

from repro.sim import (
    ProgramBuilder,
    ProgramValidationError,
    RecvTask,
    SendTask,
    validate_programs,
)


def _valid_programs():
    b = ProgramBuilder(4)
    for node in range(4):
        idx = b.compute(node, 1.0, tag="work")
        b.broadcast(node, 1e6, after=idx)
    i = b.compute(0, 0.5)
    b.transfer(0, 3, 2e6, after=i)
    b.compute(3, 0.5, needs_recv=True)
    return b.build()


class TestValidPrograms:
    def test_summary(self):
        stats = validate_programs(_valid_programs())
        assert stats["compute_tasks"] == 6
        assert stats["sends"] == 5
        assert stats["recvs"] == 13  # 4 broadcasts x 3 + 1 transfer
        assert stats["bytes"] == pytest.approx(4 * 3e6 + 2e6)

    def test_scheduler_output_validates(self):
        """Everything the real mappers emit passes validation."""
        from repro.cost import CONVBN_UNIT, OpCostModel
        from repro.hw import HYDRA_CARD
        from repro.sched import (
            map_bootstrap,
            map_bsgs_matvec,
            map_distributed_units,
            map_polynomial_tree,
        )
        cost = OpCostModel(HYDRA_CARD)
        b = ProgramBuilder(8)
        map_distributed_units(b, cost, units=100,
                              unit_bundle=CONVBN_UNIT, level=20,
                              output_ciphertexts=4, tag="c")
        map_bsgs_matvec(b, cost, list(range(8)), level=20, bs=2, gs=16,
                        tag="f")
        map_polynomial_tree(b, cost, list(range(4)), degree=15,
                            level=18, tag="n")
        map_bootstrap(b, cost, [4, 5, 6, 7], tag="b")
        validate_programs(b.build())


class TestDefects:
    def test_unmatched_send(self):
        programs = _valid_programs()
        programs[0].comm.append(SendTask(dst=1, size=100))
        with pytest.raises(ProgramValidationError, match="0->1"):
            validate_programs(programs)

    def test_unmatched_recv(self):
        programs = _valid_programs()
        programs[2].comm.append(RecvTask(src=1, size=100))
        with pytest.raises(ProgramValidationError, match="1->2"):
            validate_programs(programs)

    def test_bad_dependency_index(self):
        b = ProgramBuilder(2)
        b.programs[0].comm.append(SendTask(dst=1, size=10,
                                           after_compute=7))
        b.programs[1].comm.append(RecvTask(src=0, size=10))
        with pytest.raises(ProgramValidationError, match="compute\\[7\\]"):
            validate_programs(b.build())

    def test_too_many_ct_d(self):
        b = ProgramBuilder(2)
        b.compute(0, 1.0, needs_recv=True)
        with pytest.raises(ProgramValidationError,
                           match="data-dependent"):
            validate_programs(b.build())

    def test_self_send(self):
        b = ProgramBuilder(2)
        b.programs[0].comm.append(SendTask(dst=0, size=10))
        with pytest.raises(ProgramValidationError, match="itself"):
            validate_programs(b.build())

    def test_out_of_range_destination(self):
        b = ProgramBuilder(2)
        b.programs[0].comm.append(SendTask(dst=9, size=10))
        with pytest.raises(ProgramValidationError, match="out of range"):
            validate_programs(b.build())
