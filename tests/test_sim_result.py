"""Unit tests for simulation result accounting and merging."""

import pytest

from repro.cost.model import OpComponents
from repro.sim.result import NodeStats, SimResult, TraceEvent


def _result(makespan, busy, nodes=2, tags=None):
    r = SimResult(makespan=makespan,
                  nodes=[NodeStats(compute_busy=busy) for _ in range(nodes)])
    if tags:
        r.tag_compute = dict(tags)
    return r


class TestCommOverhead:
    def test_fully_busy_nodes_have_zero_overhead(self):
        r = _result(10.0, 10.0)
        assert r.comm_overhead_fraction == 0.0

    def test_half_idle(self):
        r = _result(10.0, 5.0)
        assert r.comm_overhead_fraction == pytest.approx(0.5)

    def test_empty_result(self):
        assert SimResult().comm_overhead_fraction == 0.0


class TestMergeSequential:
    def test_makespans_add(self):
        a = _result(3.0, 2.0)
        b = _result(5.0, 4.0)
        a.merge_sequential(b)
        assert a.makespan == pytest.approx(8.0)
        assert a.nodes[0].compute_busy == pytest.approx(6.0)

    def test_tags_merge(self):
        a = _result(1.0, 1.0, tags={"ConvBN": 1.0})
        b = _result(1.0, 1.0, tags={"ConvBN": 2.0, "Boot": 3.0})
        a.merge_sequential(b)
        assert a.tag_compute == {"ConvBN": 3.0, "Boot": 3.0}

    def test_merge_into_empty(self):
        a = SimResult()
        b = _result(2.0, 1.0)
        a.merge_sequential(b)
        assert a.makespan == 2.0
        assert len(a.nodes) == 2

    def test_node_count_mismatch_rejected(self):
        a = _result(1.0, 1.0, nodes=2)
        b = _result(1.0, 1.0, nodes=4)
        with pytest.raises(ValueError):
            a.merge_sequential(b)

    def test_components_merge(self):
        a = SimResult(nodes=[NodeStats()],
                      components_total=OpComponents(ntt_s=1.0))
        b = SimResult(nodes=[NodeStats()],
                      components_total=OpComponents(ntt_s=2.0))
        a.merge_sequential(b)
        assert a.components_total.ntt_s == pytest.approx(3.0)

    def test_trace_events_shift_past_barrier(self):
        a = _result(3.0, 2.0)
        a.trace = [TraceEvent(node=0, kind="compute", tag="x",
                              start=0.0, end=3.0)]
        b = _result(5.0, 4.0)
        b.trace = [TraceEvent(node=1, kind="compute", tag="y",
                              start=1.0, end=5.0)]
        a.merge_sequential(b)
        assert a.trace[1].start == pytest.approx(4.0)
        assert a.trace[1].end == pytest.approx(8.0)

    def test_negative_makespan_rejected(self):
        a = _result(1.0, 1.0)
        with pytest.raises(ValueError, match="makespan"):
            a.merge_sequential(_result(-2.0, 1.0))
        # Nothing was merged by the failed call.
        assert a.makespan == pytest.approx(1.0)

    def test_out_of_order_event_rejected(self):
        a = _result(1.0, 1.0)
        b = _result(2.0, 1.0)
        # Already-shifted (absolute-time) events would land on top of the
        # merged timeline: refuse instead of silently corrupting it.
        b.trace = [TraceEvent(node=0, kind="compute", tag="x",
                              start=1.5, end=3.5)]
        with pytest.raises(ValueError, match="out-of-order"):
            a.merge_sequential(b)
        assert a.makespan == pytest.approx(1.0)
        assert a.trace == []

    def test_pre_barrier_event_rejected(self):
        a = _result(1.0, 1.0)
        b = _result(2.0, 1.0)
        b.trace = [TraceEvent(node=0, kind="compute", tag="x",
                              start=-0.5, end=1.0)]
        with pytest.raises(ValueError, match="out-of-order"):
            a.merge_sequential(b)

    def test_inverted_event_rejected(self):
        a = _result(1.0, 1.0)
        b = _result(2.0, 1.0)
        b.trace = [TraceEvent(node=0, kind="compute", tag="x",
                              start=1.5, end=0.5)]
        with pytest.raises(ValueError, match="ends"):
            a.merge_sequential(b)

    def test_event_at_exact_step_boundary_accepted(self):
        a = _result(1.0, 1.0)
        b = _result(2.0, 1.0)
        b.trace = [TraceEvent(node=0, kind="compute", tag="x",
                              start=0.0, end=2.0)]
        a.merge_sequential(b)
        assert a.trace[0].end == pytest.approx(3.0)

    def test_bytes_and_transfers_accumulate(self):
        a = _result(1.0, 1.0)
        a.bytes_transferred = 10.0
        a.transfers = 1
        b = _result(1.0, 1.0)
        b.bytes_transferred = 20.0
        b.transfers = 2
        a.merge_sequential(b)
        assert a.bytes_transferred == 30.0
        assert a.transfers == 3
