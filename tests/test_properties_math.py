"""Property-based tests (hypothesis) for the number-theoretic core."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.math.modular import (
    BarrettReducer,
    is_prime,
    mod_exp,
    mod_inverse,
)
from repro.math.ntt import NttContext
from repro.math.primes import find_ntt_primes

_PRIMES = {
    64: find_ntt_primes(64, 28, 1)[0],
    256: find_ntt_primes(256, 28, 1)[0],
}

_SETTINGS = dict(max_examples=30, deadline=None)


class TestModularProperties:
    @given(st.integers(2, 10 ** 9), st.integers(0, 200),
           st.integers(0, 200))
    @settings(**_SETTINGS)
    def test_mod_exp_multiplicative(self, base, e1, e2):
        q = 1_000_003
        lhs = mod_exp(base, e1 + e2, q)
        rhs = mod_exp(base, e1, q) * mod_exp(base, e2, q) % q
        assert lhs == rhs

    @given(st.integers(1, 10 ** 12))
    @settings(**_SETTINGS)
    def test_mod_inverse_is_inverse(self, v):
        q = 1_000_003
        if v % q == 0:
            return
        assert v * mod_inverse(v, q) % q == 1

    @given(st.integers(0, 2 ** 60))
    @settings(**_SETTINGS)
    def test_barrett_matches_mod(self, v):
        q = 998_244_353
        assert BarrettReducer(q).reduce(v % (q * q)) == v % (q * q) % q

    @given(st.integers(2, 10 ** 6))
    @settings(**_SETTINGS)
    def test_is_prime_agrees_with_trial_division(self, n):
        def trial(m):
            if m < 2:
                return False
            d = 2
            while d * d <= m:
                if m % d == 0:
                    return False
                d += 1
            return True

        assert is_prime(n) == trial(n)


class TestNttProperties:
    @given(st.data())
    @settings(**_SETTINGS)
    def test_round_trip(self, data):
        n = data.draw(st.sampled_from([64, 256]))
        q = _PRIMES[n]
        seed = data.draw(st.integers(0, 2 ** 31))
        rng = np.random.default_rng(seed)
        a = rng.integers(0, q, n, dtype=np.uint64)
        ctx = NttContext(n, modulus=q)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    @given(st.integers(0, 2 ** 31), st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_transform_is_linear(self, s1, s2):
        n = 64
        q = _PRIMES[n]
        ctx = NttContext(n, modulus=q)
        a = np.random.default_rng(s1).integers(0, q, n, dtype=np.uint64)
        b = np.random.default_rng(s2).integers(0, q, n, dtype=np.uint64)
        lhs = ctx.forward((a + b) % np.uint64(q))
        rhs = (ctx.forward(a) + ctx.forward(b)) % np.uint64(q)
        assert np.array_equal(lhs, rhs)

    @given(st.integers(0, 2 ** 31), st.integers(0, 2 ** 31))
    @settings(**_SETTINGS)
    def test_multiplication_commutes(self, s1, s2):
        n = 64
        q = _PRIMES[n]
        ctx = NttContext(n, modulus=q)
        a = np.random.default_rng(s1).integers(0, q, n, dtype=np.uint64)
        b = np.random.default_rng(s2).integers(0, q, n, dtype=np.uint64)
        assert np.array_equal(
            ctx.negacyclic_multiply(a, b), ctx.negacyclic_multiply(b, a)
        )
