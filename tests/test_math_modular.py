"""Unit tests for scalar modular arithmetic."""

import pytest

from repro.math.modular import (
    BarrettReducer,
    is_prime,
    mod_exp,
    mod_inverse,
    nth_root_of_unity,
    primitive_root,
)


class TestModExp:
    def test_small_cases(self):
        assert mod_exp(2, 10, 1000) == 24
        assert mod_exp(3, 0, 7) == 1
        assert mod_exp(0, 5, 7) == 0

    def test_fermat_little_theorem(self):
        p = 1000003
        for base in (2, 3, 5, 999999):
            assert mod_exp(base, p - 1, p) == 1

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            mod_exp(2, -1, 7)

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            mod_exp(2, 3, 0)


class TestModInverse:
    def test_inverse_identity(self):
        q = 1073707009
        for v in (1, 2, 12345, q - 1):
            assert v * mod_inverse(v, q) % q == 1

    def test_handles_values_above_modulus(self):
        assert mod_inverse(10, 7) == mod_inverse(3, 7)

    def test_no_inverse_raises(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)


class TestIsPrime:
    def test_small_primes_and_composites(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
        for n in range(2, 40):
            assert is_prime(n) == (n in primes)

    def test_large_known_prime(self):
        assert is_prime(2 ** 31 - 1)  # Mersenne prime M31
        assert not is_prime(2 ** 32 - 1)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 41041):
            assert not is_prime(n)

    def test_edge_cases(self):
        assert not is_prime(0)
        assert not is_prime(1)
        assert not is_prime(-7)


class TestPrimitiveRoot:
    def test_generates_full_group(self):
        p = 257
        g = primitive_root(p)
        seen = set()
        x = 1
        for _ in range(p - 1):
            x = x * g % p
            seen.add(x)
        assert len(seen) == p - 1

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            primitive_root(100)


class TestNthRootOfUnity:
    def test_root_has_exact_order(self):
        q = 1073707009  # 1 mod 2048
        n = 2048
        w = nth_root_of_unity(n, q)
        assert pow(w, n, q) == 1
        assert pow(w, n // 2, q) == q - 1  # primitive: order exactly n

    def test_rejects_non_dividing_order(self):
        with pytest.raises(ValueError):
            nth_root_of_unity(10, 17)


class TestBarrettReducer:
    def test_matches_builtin_mod(self):
        q = 998244353
        reducer = BarrettReducer(q)
        for v in (0, 1, q - 1, q, q + 1, q * q - 1, 123456789012345678 % (q * q)):
            assert reducer.reduce(v) == v % q

    def test_mul(self):
        q = 1073707009
        reducer = BarrettReducer(q)
        assert reducer.mul(q - 1, q - 1) == (q - 1) * (q - 1) % q

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BarrettReducer(7).reduce(-1)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            BarrettReducer(1)
