"""Tests for the public CNN workload builder."""

import pytest

from repro.hw import HYDRA_M, HYDRA_S
from repro.models import CnnBuilder
from repro.sched import Planner


def _lenet_like():
    b = CnnBuilder("lenet_like", input_hw=32, input_channels=3)
    b.conv(16).relu().pool(2)
    b.conv(32).relu().pool(2)
    b.fc(10)
    return b.build()


class TestCnnBuilder:
    def test_builds_runnable_model(self):
        model = _lenet_like()
        assert model.name == "lenet_like"
        assert len(model.steps_of_kind("convbn")) == 2
        assert len(model.steps_of_kind("pooling")) == 2
        assert len(model.steps_of_kind("fc")) == 1
        result = Planner(HYDRA_S).run_model(model, with_energy=False)
        assert result.total_seconds > 0

    def test_scales_out(self):
        model = _lenet_like()
        one = Planner(HYDRA_S).run_model(model, with_energy=False)
        eight = Planner(HYDRA_M).run_model(model, with_energy=False)
        assert eight.total_seconds < one.total_seconds

    def test_feature_shape_tracking(self):
        b = CnnBuilder("shapes", input_hw=64, input_channels=3)
        b.conv(32)
        assert b.feature_shape == (64, 64, 32)
        b.conv(64, downsample=True)
        assert b.feature_shape == (32, 32, 64)
        b.pool(2)
        assert b.feature_shape == (16, 16, 64)

    def test_deep_model_inserts_bootstraps(self):
        b = CnnBuilder("deep", input_hw=16, input_channels=8)
        for _ in range(6):
            b.conv(8).relu()
        model = b.build()
        assert len(model.steps_of_kind("bootstrap")) >= 1

    def test_fluent_chaining(self):
        model = (CnnBuilder("chain", input_hw=8, input_channels=1)
                 .conv(4).relu().fc(2).build())
        assert len(model.steps) >= 3

    def test_build_finalizes(self):
        b = CnnBuilder("once", input_hw=8, input_channels=1)
        b.conv(4)
        b.build()
        with pytest.raises(RuntimeError):
            b.conv(8)
        with pytest.raises(RuntimeError):
            b.build()

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            CnnBuilder("empty", input_hw=8).build()

    def test_overpooling_rejected(self):
        b = CnnBuilder("tiny", input_hw=2, input_channels=1)
        b.conv(4)
        with pytest.raises(ValueError):
            b.pool(4)

    def test_downsample_floor(self):
        b = CnnBuilder("small", input_hw=1, input_channels=1)
        with pytest.raises(ValueError):
            b.conv(4, downsample=True)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CnnBuilder("bad", input_hw=0)
