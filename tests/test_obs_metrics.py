"""Tests for repro.obs: metrics registry, snapshots, span tracing."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Recorder,
    current_recorder,
    get_registry,
    inc,
    merge_snapshots,
    span,
    use_registry,
)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("ops", op="cmult")
        reg.inc("ops", 2, op="cmult")
        reg.inc("ops", op="rescale")
        snap = reg.snapshot()
        assert snap["counters"]["ops"]["op=cmult"] == 3
        assert snap["counters"]["ops"]["op=rescale"] == 1

    def test_label_keys_are_sorted(self):
        reg = MetricsRegistry()
        reg.inc("x", b="2", a="1")
        reg.inc("x", a="1", b="2")
        assert reg.snapshot()["counters"]["x"] == {"a=1,b=2": 2}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.snapshot()["gauges"]["depth"][""] == 7

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        for value in (0.5e-6, 5e-6, 2.0, 1e9):
            reg.observe("lat", value)
        hist = reg.snapshot()["histograms"]["lat"][""]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(1e9 + 2.0 + 5.5e-6)
        assert hist["min"] == 0.5e-6 and hist["max"] == 1e9
        assert hist["buckets"]["1e-06"] == 1
        assert hist["buckets"]["1e-05"] == 1
        assert hist["buckets"]["10"] == 1
        assert hist["buckets"]["+Inf"] == 1

    def test_snapshot_is_json_and_detached(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        json.dumps(snap)  # must be plain JSON data
        reg.inc("n")
        reg.observe("h", 2.0)
        assert snap["counters"]["n"][""] == 1
        assert snap["histograms"]["h"][""]["count"] == 1

    def test_reset_and_is_empty(self):
        reg = MetricsRegistry()
        assert reg.is_empty
        reg.inc("n")
        assert not reg.is_empty
        reg.reset()
        assert reg.is_empty


class TestMerge:
    def test_merge_sums_counters_in_order(self):
        a = MetricsRegistry()
        a.inc("n", 1)
        b = MetricsRegistry()
        b.inc("n", 2)
        b.inc("other", 5, tag="x")
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"][""] == 3
        assert merged["counters"]["other"]["tag=x"] == 5

    def test_merge_histograms(self):
        a = MetricsRegistry()
        a.observe("h", 0.5)
        b = MetricsRegistry()
        b.observe("h", 3.0)
        b.observe("h", 0.25)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        hist = merged["histograms"]["h"][""]
        assert hist["count"] == 3
        assert hist["min"] == 0.25 and hist["max"] == 3.0

    def test_merge_empty_is_empty(self):
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_single_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("n", 2, op="a")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.1)
        snap = reg.snapshot()
        assert json.dumps(merge_snapshots([snap]), sort_keys=True) \
            == json.dumps(snap, sort_keys=True)

    def test_merge_disjoint_label_sets(self):
        # Same metric name, non-overlapping label keys: both series
        # survive side by side, nothing sums across labels.
        a = MetricsRegistry()
        a.inc("ops", 2, tenant="a")
        a.observe("h", 1.0, cluster="x")
        b = MetricsRegistry()
        b.inc("ops", 5, cluster="y")
        b.observe("h", 3.0, tenant="b")
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["ops"] == {"tenant=a": 2, "cluster=y": 5}
        hists = merged["histograms"]["h"]
        assert set(hists) == {"cluster=x", "tenant=b"}
        assert hists["cluster=x"]["count"] == 1
        assert hists["tenant=b"]["count"] == 1

    def test_merge_with_empty_snapshot_is_identity(self):
        reg = MetricsRegistry()
        reg.inc("n", 4)
        reg.observe("h", 2.0)
        snap = reg.snapshot()
        empty = MetricsRegistry().snapshot()
        for order in ([empty, snap], [snap, empty]):
            assert json.dumps(merge_snapshots(order), sort_keys=True) \
                == json.dumps(snap, sort_keys=True)

    def test_merge_gauges_last_write_wins_across_snapshots(self):
        a = MetricsRegistry()
        a.set_gauge("depth", 1.0)
        b = MetricsRegistry()
        b.set_gauge("depth", 9.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["depth"][""] == 9.0


class TestActiveRegistry:
    def test_use_registry_isolates(self):
        outer = get_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped):
            inc("scoped.counter")
            assert get_registry() is scoped
        assert get_registry() is outer
        assert scoped.snapshot()["counters"]["scoped.counter"][""] == 1
        assert "scoped.counter" not in outer.snapshot()["counters"]

    def test_instrumented_layers_record(self):
        from repro.hw import hydra_cluster
        from repro.sim import ProgramBuilder, Simulator

        reg = MetricsRegistry()
        with use_registry(reg):
            builder = ProgramBuilder(2)
            i = builder.compute(0, 1.0, tag="work")
            builder.transfer(0, 1, 1e6, after=i, tag="xfer")
            builder.compute(1, 0.5, tag="work", needs_recv=True)
            Simulator(hydra_cluster(1, 2)).run(builder.build())
        counters = reg.snapshot()["counters"]
        assert counters["sim.engine.runs"][""] == 1
        assert counters["sim.engine.tasks"][""] == 2
        assert counters["sim.engine.transfers"][""] == 1


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestSpans:
    def test_span_without_recorder_is_noop(self):
        assert current_recorder() is None
        with span("nothing"):
            pass  # must not raise or record anywhere

    def test_recorder_collects_nested_spans(self):
        with Recorder(clock=_FakeClock()) as rec:
            with span("outer", category="test", step="s1"):
                with span("inner", category="test"):
                    pass
        names = {s.name for s in rec.spans}
        assert names == {"outer", "inner"}
        outer = next(s for s in rec.spans if s.name == "outer")
        inner = next(s for s in rec.spans if s.name == "inner")
        assert outer.depth == 0 and inner.depth == 1
        assert outer.start < inner.start < inner.end < outer.end
        assert dict(outer.args) == {"step": "s1"}

    def test_span_dict_round_trip(self):
        with Recorder(clock=_FakeClock()) as rec:
            with span("x", category="c", a=1):
                pass
        from repro.obs import Span

        restored = Span.from_dict(rec.spans[0].to_dict())
        assert restored == rec.spans[0]

    def test_total_seconds(self):
        with Recorder(clock=_FakeClock()) as rec:
            with span("a"):
                pass
            with span("a"):
                pass
        assert rec.total_seconds("a") == pytest.approx(2.0)
        assert rec.total_seconds() == pytest.approx(2.0)

    def test_planner_spans_recorded(self):
        from repro.core import HydraSystem
        from repro.sim import ProgramBuilder

        system = HydraSystem.named("Hydra-S")
        model = system.build_model("resnet18")
        step = next(s for s in model.steps if s.is_unit_parallel)
        builder = ProgramBuilder(system.total_cards)
        with Recorder() as rec:
            system.planner.map_step(step, builder, 1.0)
        plan = [s for s in rec.spans if s.name == "plan.step"]
        assert len(plan) == 1
        assert dict(plan[0].args)["step"] == step.name
