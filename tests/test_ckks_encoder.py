"""Unit tests for the CKKS canonical-embedding encoder."""

import numpy as np
import pytest

from repro.ckks.encoder import CkksEncoder
from repro.poly import RnsContext


@pytest.fixture(scope="module")
def encoder():
    return CkksEncoder(128)


@pytest.fixture(scope="module")
def rns():
    return RnsContext.create(
        poly_degree=128,
        first_modulus_bits=29,
        scale_modulus_bits=25,
        num_scale_moduli=2,
        special_modulus_bits=30,
        num_special_moduli=1,
    )


class TestTransforms:
    def test_round_trip(self, encoder):
        rng = np.random.default_rng(0)
        z = rng.normal(size=64) + 1j * rng.normal(size=64)
        back = encoder.coeffs_to_slots(encoder.slots_to_coeffs(z))
        assert np.max(np.abs(back - z)) < 1e-9

    def test_matches_embedding_matrix(self, encoder):
        rng = np.random.default_rng(1)
        c = rng.normal(size=128)
        direct = encoder.embedding_matrix() @ c
        fast = encoder.coeffs_to_slots(c)
        assert np.max(np.abs(direct - fast)) < 1e-9

    def test_linearity(self, encoder):
        rng = np.random.default_rng(2)
        z1 = rng.normal(size=64) + 1j * rng.normal(size=64)
        z2 = rng.normal(size=64) + 1j * rng.normal(size=64)
        lhs = encoder.slots_to_coeffs(2.0 * z1 + z2)
        rhs = 2.0 * encoder.slots_to_coeffs(z1) + encoder.slots_to_coeffs(z2)
        assert np.max(np.abs(lhs - rhs)) < 1e-9

    def test_constant_vector_encodes_to_constant_poly(self, encoder):
        coeffs = encoder.slots_to_coeffs(np.full(64, 3.0 + 0j))
        assert abs(coeffs[0] - 3.0) < 1e-9
        assert np.max(np.abs(coeffs[1:])) < 1e-9

    def test_shape_validation(self, encoder):
        with pytest.raises(ValueError):
            encoder.coeffs_to_slots(np.zeros(64))
        with pytest.raises(ValueError):
            encoder.slots_to_coeffs(np.zeros(128))


class TestScaledEncodeDecode:
    def test_precision(self, encoder, rns):
        rng = np.random.default_rng(3)
        z = rng.normal(scale=1.0, size=64) + 1j * rng.normal(scale=1.0, size=64)
        scale = 2.0 ** 25
        poly = encoder.encode(z, scale, rns, rns.data_indices)
        back = encoder.decode(poly, scale)
        assert np.max(np.abs(back - z)) < 1e-5

    def test_scalar_broadcast(self, encoder, rns):
        poly = encoder.encode(0.5, 2.0 ** 25, rns, rns.data_indices)
        back = encoder.decode(poly, 2.0 ** 25)
        assert np.max(np.abs(back - 0.5)) < 1e-6

    def test_short_vector_zero_padded(self, encoder, rns):
        poly = encoder.encode([1.0, 2.0], 2.0 ** 25, rns, rns.data_indices)
        back = encoder.decode(poly, 2.0 ** 25)
        assert abs(back[0] - 1.0) < 1e-6
        assert abs(back[1] - 2.0) < 1e-6
        assert np.max(np.abs(back[2:])) < 1e-6

    def test_oversized_vector_rejected(self, encoder, rns):
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(65), 2.0 ** 25, rns, rns.data_indices)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            CkksEncoder(100)
