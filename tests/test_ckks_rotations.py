"""Functional tests for slot rotations, conjugation and keyswitching."""

import numpy as np
import pytest

TOL = 5e-3


class TestRotation:
    @pytest.mark.parametrize("steps", [1, 2, 4, 8])
    def test_left_rotation(self, toy_fhe, rng, steps):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        out = toy_fhe.evaluator.rotate(ct, steps, toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.roll(z, -steps))) < TOL

    def test_negative_rotation(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        out = toy_fhe.evaluator.rotate(ct, -1, toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.roll(z, 1))) < TOL

    def test_zero_rotation_is_identity(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        out = toy_fhe.evaluator.rotate(ct, 0, toy_fhe.galois_keys)
        assert out is ct

    def test_full_cycle_rotation_is_identity(self, toy_fhe, rng):
        n = toy_fhe.params.slot_count
        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng))
        out = toy_fhe.evaluator.rotate(ct, n, toy_fhe.galois_keys)
        assert out is ct

    def test_rotation_composes(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        ev = toy_fhe.evaluator
        out = ev.rotate(ev.rotate(ct, 1, toy_fhe.galois_keys), 2,
                        toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.roll(z, -3))) < TOL

    def test_missing_key_rejected(self, toy_fhe, rng):
        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng))
        with pytest.raises(KeyError):
            toy_fhe.evaluator.rotate(ct, 3, toy_fhe.galois_keys)

    def test_rotation_at_low_level(self, toy_fhe, rng):
        """Keyswitching must work on mod-switched ciphertexts too."""
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.evaluator.drop_to_level(toy_fhe.encrypt(z), 1)
        out = toy_fhe.evaluator.rotate(ct, 1, toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.roll(z, -1))) < TOL


class TestConjugation:
    def test_conjugate(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng, complex_values=True)
        ct = toy_fhe.encrypt(z)
        out = toy_fhe.evaluator.conjugate(ct, toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.conj(z))) < TOL

    def test_conjugate_is_involution(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng, complex_values=True)
        ct = toy_fhe.encrypt(z)
        ev = toy_fhe.evaluator
        out = ev.conjugate(ev.conjugate(ct, toy_fhe.galois_keys),
                           toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out) - z)) < TOL

    def test_real_extraction(self, toy_fhe, rng):
        """(z + conj(z)) / 2 = Re(z) — the split used in bootstrapping."""
        z = toy_fhe.random_vector(rng, complex_values=True)
        ct = toy_fhe.encrypt(z)
        ev = toy_fhe.evaluator
        summed = ev.add(ct, ev.conjugate(ct, toy_fhe.galois_keys))
        out = ev.rescale(ev.multiply_const(summed, 0.5))
        assert np.max(np.abs(toy_fhe.decrypt(out) - z.real)) < TOL


class TestGaloisElements:
    def test_step_element_order(self, toy_fhe):
        ctx = toy_fhe.context
        n = ctx.params.slot_count
        assert ctx.galois_element_for_step(0) == 1
        assert ctx.galois_element_for_step(n) == 1
        assert ctx.galois_element_for_step(1) == 5

    def test_negative_step_wraps(self, toy_fhe):
        ctx = toy_fhe.context
        n = ctx.params.slot_count
        assert (ctx.galois_element_for_step(-1)
                == ctx.galois_element_for_step(n - 1))

    def test_rotation_steps_dedup(self, toy_fhe):
        ctx = toy_fhe.context
        elements = ctx.rotation_steps_for_elements([1, 1, 0, 2])
        assert len(elements) == 2
