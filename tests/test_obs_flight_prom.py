"""Tests for the flight recorder ring and the Prometheus text writer."""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    PromWriter,
    registry_to_prom,
)


class TestFlightRecorder:
    def test_records_in_order_below_capacity(self):
        rec = FlightRecorder(capacity=8)
        rec.record("admit", 1.0, tenant="a")
        rec.record("dispatch", 2.0, batch="b-0")
        events = rec.events()
        assert [e["kind"] for e in events] == ["admit", "dispatch"]
        assert [e["seq"] for e in events] == [0, 1]
        assert rec.dropped == 0
        assert len(rec) == rec.total_recorded == 2

    def test_ring_evicts_oldest(self):
        rec = FlightRecorder(capacity=3)
        for k in range(10):
            rec.record("tick", float(k), k=k)
        events = rec.events()
        assert len(rec) == 3
        assert [e["seq"] for e in events] == [7, 8, 9]
        assert rec.total_recorded == 10
        assert rec.dropped == 7

    def test_trigger_remembers_first(self):
        rec = FlightRecorder(capacity=4)
        rec.record("admit", 0.5)
        rec.trigger("slo_budget_exceeded", 1.5, tenant="hot")
        rec.trigger("slo_budget_exceeded", 9.0, tenant="warm")
        assert rec.first_trigger == ("slo_budget_exceeded", 1.5, 1)
        kinds = [e["kind"] for e in rec.events()]
        assert kinds == ["admit", "trigger", "trigger"]

    def test_jsonl_is_canonical_and_stamped(self):
        rec = FlightRecorder(capacity=2)
        rec.record("admit", 1.0, tenant="a")
        text = rec.to_jsonl(extra_fields={"fleet": "hydra-m"})
        line = json.loads(text.splitlines()[0])
        assert line == {"fleet": "hydra-m", "kind": "admit", "seq": 0,
                        "tenant": "a", "time": 1.0}
        # sorted-key rendering, trailing newline, empty ring -> ""
        assert text == json.dumps(line, sort_keys=True) + "\n"
        assert FlightRecorder().to_jsonl() == ""

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestPromWriter:
    def test_counter_and_gauge_families(self):
        text = (PromWriter()
                .counter("repro.serve.arrivals", 7,
                         labels={"tenant": "a"}, help_text="arrivals")
                .gauge("depth", 3.5)
                .render())
        assert "# HELP repro_serve_arrivals arrivals" in text
        assert "# TYPE repro_serve_arrivals counter" in text
        assert 'repro_serve_arrivals{tenant="a"} 7' in text
        assert "depth 3.5" in text

    def test_summary_quantile_ladder(self):
        text = (PromWriter()
                .summary("lat", count=10, total=25.0,
                         quantiles={0.5: 1.0, 0.99: 4.0},
                         labels={"tenant": "a"})
                .render())
        lines = [ln for ln in text.splitlines() if ln.startswith("lat")]
        assert lines == [
            'lat{quantile="0.5",tenant="a"} 1',
            'lat{quantile="0.99",tenant="a"} 4',
            'lat_count{tenant="a"} 10',
            'lat_sum{tenant="a"} 25',
        ]

    def test_histogram_is_cumulative_with_inf(self):
        text = (PromWriter()
                .histogram("lat", buckets={1.0: 3, 10.0: 2},
                           count=7, total=30.0)
                .render())
        lines = [ln for ln in text.splitlines() if ln.startswith("lat")]
        # 2 observations above every finite bound land in +Inf only.
        assert lines == [
            'lat_bucket{le="1"} 3',
            'lat_bucket{le="10"} 5',
            'lat_bucket{le="+Inf"} 7',
            "lat_count 7",
            "lat_sum 30",
        ]

    def test_type_conflict_raises(self):
        writer = PromWriter().counter("x", 1)
        with pytest.raises(ValueError, match="already registered"):
            writer.gauge("x", 2)

    def test_label_values_escaped(self):
        text = (PromWriter()
                .gauge("g", 1, labels={"path": 'a"b\\c\nd'})
                .render())
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_deterministic_family_order(self):
        def build(order):
            w = PromWriter()
            for name in order:
                w.counter(name, 1)
            return w.render()

        assert build(["b", "a"]) == build(["a", "b"])


class TestRegistryToProm:
    def test_round_trips_registry_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("serve.arrivals", 3, tenant="a")
        reg.set_gauge("queue.depth", 2.0)
        reg.observe("latency", 0.5, buckets=(1.0, 10.0))
        reg.observe("latency", 99.0, buckets=(1.0, 10.0))
        text = registry_to_prom(reg.snapshot()).render()
        assert 'repro_serve_arrivals{tenant="a"} 3' in text
        assert "repro_queue_depth 2" in text
        assert 'repro_latency_bucket{le="1"} 1' in text
        assert 'repro_latency_bucket{le="+Inf"} 2' in text
        assert "repro_latency_count 2" in text
        assert "repro_latency_sum 99.5" in text

    def test_empty_snapshot_renders_empty(self):
        reg = MetricsRegistry()
        assert registry_to_prom(reg.snapshot()).render() == ""
