"""Property-based tests for the cost model and scheduling helpers."""

from hypothesis import given, settings, strategies as st

from repro.cost import OpBundle, OpCostModel
from repro.hw import HYDRA_CARD
from repro.sched.groups import group_assignments, partition_groups

_SETTINGS = dict(max_examples=40, deadline=None)
_COST = OpCostModel(HYDRA_CARD)
_OPS = ("hadd", "pmult", "cmult", "rotation", "rescale", "keyswitch")


class TestCostModelProperties:
    @given(st.sampled_from(_OPS),
           st.integers(0, _COST.params.max_level - 1))
    @settings(**_SETTINGS)
    def test_monotone_in_level(self, op, level):
        assert (_COST.op(op, level + 1).seconds
                >= _COST.op(op, level).seconds)

    @given(st.sampled_from(_OPS), st.sampled_from(_OPS),
           st.integers(0, _COST.params.max_level))
    @settings(**_SETTINGS)
    def test_components_additive(self, op_a, op_b, level):
        a = _COST.op(op_a, level)
        b = _COST.op(op_b, level)
        s = a + b
        assert abs(s.ntt_s - (a.ntt_s + b.ntt_s)) < 1e-15
        assert abs(s.hbm_bytes - (a.hbm_bytes + b.hbm_bytes)) < 1e-3
        # The pacing time of the sum never exceeds the serial sum.
        assert s.seconds <= a.seconds + b.seconds + 1e-15

    @given(st.integers(0, 20), st.integers(0, 5), st.integers(0, 20),
           st.integers(0, 20), st.integers(1, 4),
           st.integers(0, _COST.params.max_level))
    @settings(**_SETTINGS)
    def test_bundle_equals_manual_sum(self, rot, cm, pm, ha, scale_k,
                                      level):
        bundle = OpBundle(rotation=rot, cmult=cm, pmult=pm, hadd=ha)
        if bundle.total_ops == 0:
            return
        total = _COST.bundle(bundle, level)
        manual = (
            _COST.rotation(level).scaled(rot)
            + _COST.cmult(level).scaled(cm)
            + _COST.pmult(level).scaled(pm)
            + _COST.hadd(level).scaled(ha)
        )
        assert abs(total.compute_s - manual.compute_s) < 1e-12
        scaled = bundle.scaled(scale_k)
        assert scaled.total_ops == bundle.total_ops * scale_k

    @given(st.integers(0, _COST.params.max_level))
    @settings(**_SETTINGS)
    def test_ciphertext_grows_linearly_with_limbs(self, level):
        per_limb = 2 * _COST.params.poly_degree * 8
        assert _COST.ciphertext_bytes(level) == (level + 1) * per_limb


class TestGroupProperties:
    @given(st.integers(1, 128), st.integers(1, 256))
    @settings(**_SETTINGS)
    def test_partition_invariants(self, nodes, jobs):
        groups, rounds = partition_groups(nodes, jobs)
        # Groups are disjoint, power-of-two sized, within range.
        seen = set()
        for g in groups:
            assert len(g) & (len(g) - 1) == 0
            for n in g:
                assert 0 <= n < nodes
                assert n not in seen
                seen.add(n)
        assert rounds >= 1
        # Enough group-rounds to cover every job.
        assert len(groups) * rounds >= jobs

    @given(st.integers(1, 128), st.integers(1, 256))
    @settings(**_SETTINGS)
    def test_assignments_cover_jobs_exactly(self, nodes, jobs):
        total = sum(c for _, c in group_assignments(nodes, jobs))
        assert total == jobs

    @given(st.integers(1, 128), st.integers(1, 256))
    @settings(**_SETTINGS)
    def test_assignment_balance(self, nodes, jobs):
        counts = [c for _, c in group_assignments(nodes, jobs)]
        assert max(counts) - min(counts) <= 1
