"""Unit tests for hardware descriptions: cards, clusters, resources."""

import pytest

from repro.hw import (
    FAB_CARD,
    HYDRA_CARD,
    POSEIDON_CARD,
    CardSpec,
    FpgaResourceModel,
    HYDRA_L,
    HYDRA_M,
    HYDRA_S,
    NetworkSpec,
    U280_RESOURCES,
    fab_cluster,
    hydra_cluster,
)
from repro.hw.cluster import ClusterSpec


class TestCardSpec:
    def test_hydra_card_has_dtu(self):
        assert HYDRA_CARD.dtu_bandwidth > 0

    def test_baseline_cards_have_no_dtu(self):
        assert FAB_CARD.dtu_bandwidth == 0
        assert POSEIDON_CARD.dtu_bandwidth == 0

    def test_without_dtu(self):
        stripped = HYDRA_CARD.without_dtu()
        assert stripped.dtu_bandwidth == 0
        assert stripped.lanes == HYDRA_CARD.lanes

    def test_effective_hbm_bandwidth(self):
        assert (HYDRA_CARD.effective_hbm_bandwidth
                == HYDRA_CARD.hbm_bandwidth * HYDRA_CARD.hbm_efficiency)

    def test_memory_hierarchy_ordering(self):
        """Hydra's data flow beats Poseidon's beats FAB's (Section V-B)."""
        assert (HYDRA_CARD.scratchpad_reuse
                > POSEIDON_CARD.scratchpad_reuse
                > FAB_CARD.scratchpad_reuse)

    def test_validation(self):
        with pytest.raises(ValueError):
            CardSpec(name="bad", scratchpad_reuse=1.5)
        with pytest.raises(ValueError):
            CardSpec(name="bad", lanes=0)


class TestClusterSpec:
    def test_prototype_sizes(self):
        assert HYDRA_S.total_cards == 1
        assert HYDRA_M.total_cards == 8
        assert HYDRA_L.total_cards == 64
        assert HYDRA_L.servers == 8

    def test_single_card_has_no_fabric_and_no_dtu(self):
        assert HYDRA_S.fabric == "none"
        assert HYDRA_S.card.dtu_bandwidth == 0

    def test_server_mapping(self):
        assert HYDRA_L.server_of(0) == 0
        assert HYDRA_L.server_of(7) == 0
        assert HYDRA_L.server_of(8) == 1
        assert HYDRA_L.same_server(0, 7)
        assert not HYDRA_L.same_server(7, 8)

    def test_server_of_range_check(self):
        with pytest.raises(ValueError):
            HYDRA_M.server_of(8)

    def test_fab_cluster_is_single_server(self):
        fab = fab_cluster(16)
        assert fab.servers == 1
        assert fab.fabric == "fab-host"

    def test_invalid_fabric_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", servers=1, cards_per_server=2,
                        card=HYDRA_CARD, network=NetworkSpec(),
                        fabric="token-ring")

    def test_single_card_cluster_must_use_none_fabric(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", servers=1, cards_per_server=1,
                        card=HYDRA_CARD, network=NetworkSpec(),
                        fabric="hydra-switch")

    def test_custom_hydra_cluster(self):
        c = hydra_cluster(4, 16)
        assert c.total_cards == 64
        assert c.fabric == "hydra-switch"


class TestResourceModel:
    def test_matches_paper_table4(self):
        """The structural model reproduces the published utilization."""
        util = U280_RESOURCES.utilization()
        expected = {
            "LUTs (k)": 76.5,
            "FFs (k)": 52.7,
            "DSP": 96.5,
            "BRAM": 76.2,
            "URAMs": 79.8,
        }
        for key, pct in expected.items():
            assert abs(util[key][2] - pct) < 1.0, key

    def test_design_fits_device(self):
        assert U280_RESOURCES.fits()

    def test_oversized_design_does_not_fit(self):
        assert not FpgaResourceModel(lanes=1024).fits()

    def test_table_rendering(self):
        table = U280_RESOURCES.table()
        assert "DSP" in table
        assert "96.5" in table
