"""Edge-case tests for the evaluator's scale/level bookkeeping."""

import numpy as np
import pytest

TOL = 5e-3


class TestScaleBookkeeping:
    def test_multiply_multiplies_scales(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        ca, cb = toy_fhe.encrypt(za), toy_fhe.encrypt(zb)
        prod = toy_fhe.evaluator.multiply(ca, cb, toy_fhe.relin_key)
        assert prod.scale == pytest.approx(ca.scale * cb.scale)

    def test_multiply_plain_multiplies_scales(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        pt = toy_fhe.evaluator.encode(z, scale=2.0 ** 20)
        prod = toy_fhe.evaluator.multiply_plain(ct, pt)
        assert prod.scale == pytest.approx(ct.scale * 2.0 ** 20)

    def test_custom_const_scale(self, toy_fhe, rng):
        """multiply_const at a chosen scale — the bootstrap trick."""
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        q_drop = toy_fhe.context.rns.moduli[ct.basis[-1]]
        const_scale = toy_fhe.params.scale * q_drop / ct.scale
        out = toy_fhe.evaluator.rescale(
            toy_fhe.evaluator.multiply_const(ct, 1.0, scale=const_scale)
        )
        assert out.scale == pytest.approx(toy_fhe.params.scale, rel=1e-6)
        assert np.max(np.abs(toy_fhe.decrypt(out) - z)) < TOL

    def test_mixed_level_multiply(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        high = toy_fhe.encrypt(za)
        low = toy_fhe.encrypt(zb, level=2)
        ev = toy_fhe.evaluator
        out = ev.rescale(ev.multiply(high, low, toy_fhe.relin_key))
        assert out.level == 1
        assert np.max(np.abs(toy_fhe.decrypt(out) - za * zb)) < TOL

    def test_add_plain_drops_plaintext_basis(self, toy_fhe, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.evaluator.drop_to_level(toy_fhe.encrypt(z), 1)
        pt = toy_fhe.evaluator.encode(z)  # full-level plaintext
        out = toy_fhe.evaluator.add_plain(ct, pt)
        assert out.level == 1
        assert np.max(np.abs(toy_fhe.decrypt(out) - 2 * z)) < TOL


class TestEncodeDefaults:
    def test_encode_defaults_to_params(self, toy_fhe):
        pt = toy_fhe.evaluator.encode([1.0])
        assert pt.scale == toy_fhe.params.scale
        assert pt.level == toy_fhe.context.max_level

    def test_encode_at_level(self, toy_fhe):
        pt = toy_fhe.evaluator.encode([1.0], level=1)
        assert pt.level == 1


class TestRescaleChain:
    def test_rescale_to_bottom(self, toy_fhe, rng):
        """Rescale all the way to level 0 and still decrypt."""
        z = rng.uniform(0.2, 0.8, toy_fhe.params.slot_count)
        ct = toy_fhe.encrypt(z)
        ev = toy_fhe.evaluator
        expected = z.copy()
        while ct.level > 0:
            ct = ev.rescale(ev.multiply_const(ct, 1.0))
        assert ct.level == 0
        assert np.max(np.abs(toy_fhe.decrypt(ct) - expected)) < 2e-2

    def test_scale_underflow_counter_fires(self, toy_fhe, rng):
        """Rescaling without multiplying collapses the scale below 1;
        the evaluator must count it and log the post-rescale scale."""
        from repro.obs import MetricsRegistry, use_registry

        ct = toy_fhe.encrypt(toy_fhe.random_vector(rng))
        ev = toy_fhe.evaluator
        registry = MetricsRegistry()
        with use_registry(registry):
            ct = ev.rescale(ev.rescale(ct))
        assert ct.scale < 1.0
        snap = registry.snapshot()
        assert sum(snap["counters"]["ckks.scale.underflow"].values()) >= 1
        assert "ckks.rescale.scale_log2" in snap["histograms"]

    def test_rescale_at_level_zero_rejected(self, toy_fhe, rng):
        ct = toy_fhe.evaluator.drop_to_level(
            toy_fhe.encrypt(toy_fhe.random_vector(rng)), 0
        )
        with pytest.raises(ValueError):
            toy_fhe.evaluator.rescale(ct)


class TestGaloisComposition:
    def test_apply_galois_direct(self, toy_fhe, rng):
        """apply_galois with an explicit element = rotate."""
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        g = toy_fhe.context.galois_element_for_step(2)
        out = toy_fhe.evaluator.apply_galois(
            ct, g, toy_fhe.galois_keys.key_for(g)
        )
        assert np.max(np.abs(toy_fhe.decrypt(out) - np.roll(z, -2))) < TOL

    def test_rotation_after_multiplication(self, toy_fhe, rng):
        """Keyswitching works on relinearized products."""
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        ev = toy_fhe.evaluator
        prod = ev.rescale(ev.multiply(toy_fhe.encrypt(za),
                                      toy_fhe.encrypt(zb),
                                      toy_fhe.relin_key))
        out = ev.rotate(prod, 1, toy_fhe.galois_keys)
        assert np.max(np.abs(toy_fhe.decrypt(out)
                             - np.roll(za * zb, -1))) < TOL
