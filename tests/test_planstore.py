"""The sqlite plan store: round-trip fidelity, legacy JSON migration,
and — the part the old DiskCache could not promise — cross-process
write exclusion and compile-once semantics under concurrent servers."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.hw import hydra_cluster
from repro.models import resnet18
from repro.runtime import DiskCache, SqlitePlanStore
from repro.sched.planner import Planner

_SRC = str(Path(repro.__file__).resolve().parents[1])


def _small_result():
    return Planner(hydra_cluster(1, 2)).run_model(resnet18())


@pytest.fixture(scope="module")
def result():
    return _small_result()


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CACHE_DIR", None)
    return env


class TestSqlitePlanStore:
    def test_roundtrip_is_exact(self, tmp_path, result):
        store = SqlitePlanStore(tmp_path)
        store.put("k", result)
        # A second instance must re-read from sqlite, not memory.
        loaded = SqlitePlanStore(tmp_path).get("k")
        assert loaded is not result
        assert json.dumps(loaded.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )
        assert loaded.total_seconds == result.total_seconds
        assert (loaded.sim.components_total.to_dict()
                == result.sim.components_total.to_dict())

    def test_miss_then_hit_stats(self, tmp_path, result):
        store = SqlitePlanStore(tmp_path)
        assert store.get("k") is None
        store.put("k", result)
        assert store.get("k") is not None
        assert (store.stats.misses, store.stats.hits,
                store.stats.puts) == (1, 1, 1)

    def test_memory_layer_serves_same_object(self, tmp_path, result):
        store = SqlitePlanStore(tmp_path)
        store.put("k", result)
        assert store.get("k") is store.get("k")

    def test_overwrite_replaces(self, tmp_path, result):
        store = SqlitePlanStore(tmp_path, memory=False)
        store.put("k", result)
        store.put("k", result)
        assert len(store) == 1

    def test_clear(self, tmp_path, result):
        store = SqlitePlanStore(tmp_path)
        store.put("a", result)
        store.put("b", result)
        assert len(store) == 2 and "a" in store
        store.clear()
        assert len(store) == 0 and "a" not in store

    def test_corrupt_entry_is_a_stale_miss(self, tmp_path, result):
        store = SqlitePlanStore(tmp_path, memory=False)
        store.put("k", result)
        with store._connect() as conn:
            conn.execute(
                "UPDATE plans SET payload = '{not json' WHERE key = 'k'")
        assert store.get("k") is None
        assert store.stats.stale == 1

    def test_unknown_format_is_a_stale_miss(self, tmp_path, result):
        store = SqlitePlanStore(tmp_path, memory=False)
        store.put("k", result)
        with store._connect() as conn:
            conn.execute("UPDATE plans SET format = 999 WHERE key = 'k'")
        assert store.get("k") is None
        assert store.stats.stale == 1

    def test_lock_is_reentrant_across_keys(self, tmp_path):
        store = SqlitePlanStore(tmp_path)
        with store.lock("a"):
            with store.lock("b"):
                pass  # distinct keys never deadlock


class TestLegacyMigration:
    def test_json_entries_migrate_read_only(self, tmp_path, result):
        legacy = DiskCache(tmp_path)
        legacy.put("old-key", result)
        json_files = sorted(tmp_path.glob("*.json"))
        assert json_files

        store = SqlitePlanStore(tmp_path, memory=False)
        loaded = store.get("old-key")
        assert loaded is not None
        assert loaded.total_seconds == result.total_seconds
        # Read-only shim: the JSON files are still there, untouched.
        assert sorted(tmp_path.glob("*.json")) == json_files

    def test_migration_runs_once(self, tmp_path, result):
        DiskCache(tmp_path).put("old-key", result)
        store = SqlitePlanStore(tmp_path)
        store.clear()
        # Legacy files remain on disk, but a cleared store must not
        # resurrect them on reopen — migration is a one-shot import.
        assert SqlitePlanStore(tmp_path).get("old-key") is None

    def test_sqlite_wins_over_legacy_for_fresh_puts(self, tmp_path, result):
        DiskCache(tmp_path).put("k", result)
        store = SqlitePlanStore(tmp_path, memory=False)
        assert "k" in store
        store.put("new-key", result)
        assert "new-key" in SqlitePlanStore(tmp_path, memory=False)


# Two processes hammer the same key (plus private keys) with raw puts;
# the database must stay consistent and every entry readable.
_WRITER_SCRIPT = """
import json, os, sys, time
from repro.runtime import SqlitePlanStore
from repro.sched.planner import ModelRunResult

cache_dir, result_json, tag, go_file = sys.argv[1:5]
result = ModelRunResult.from_dict(json.load(open(result_json)))
store = SqlitePlanStore(cache_dir, memory=False)
while not os.path.exists(go_file):
    time.sleep(0.005)
for i in range(30):
    store.put("shared-key", result)
    store.put(f"{tag}-{i}", result)
print("done")
"""

# Two processes race one fingerprint key through the executor; the
# per-key lock must let exactly one of them simulate.
_RACER_SCRIPT = """
import json, os, sys, time
from repro.runtime import RunRequest, SqlitePlanStore, execute

cache_dir, go_file, out_path = sys.argv[1:4]
store = SqlitePlanStore(cache_dir)
while not os.path.exists(go_file):
    time.sleep(0.005)
request = RunRequest(benchmark="resnet18", system="Hydra-S",
                     with_energy=False)
outcome = execute([request], jobs=1, cache=store)
with open(out_path, "w") as fh:
    json.dump({
        "hits": outcome.manifest.hits,
        "misses": outcome.manifest.misses,
        "total_seconds": outcome[0].result.total_seconds,
    }, fh)
"""


class TestConcurrentWriters:
    def _spawn(self, script, args):
        return subprocess.Popen(
            [sys.executable, "-c", script] + [str(a) for a in args],
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def test_two_processes_racing_raw_puts(self, tmp_path, result):
        cache_dir = tmp_path / "store"
        result_json = tmp_path / "result.json"
        result_json.write_text(json.dumps(result.to_dict()),
                               encoding="utf-8")
        go_file = tmp_path / "go"
        procs = [
            self._spawn(_WRITER_SCRIPT,
                        [cache_dir, result_json, tag, go_file])
            for tag in ("a", "b")
        ]
        time.sleep(0.3)  # let both reach the start line
        go_file.touch()
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
        store = SqlitePlanStore(cache_dir, memory=False)
        # 1 shared + 30 per process; nothing lost, nothing corrupt.
        assert len(store) == 61
        assert store.get("shared-key").total_seconds == result.total_seconds
        assert store.stats.stale == 0

    def test_two_processes_compile_each_plan_once(self, tmp_path):
        cache_dir = tmp_path / "store"
        go_file = tmp_path / "go"
        outs = [tmp_path / "out-a.json", tmp_path / "out-b.json"]
        procs = [self._spawn(_RACER_SCRIPT, [cache_dir, go_file, out])
                 for out in outs]
        time.sleep(0.3)
        go_file.touch()
        for proc in procs:
            _, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
        reports = [json.loads(out.read_text()) for out in outs]
        # Exactly one process simulated; the other found the stored
        # plan (either as an upfront hit or a post-lock late hit).
        assert sum(r["misses"] for r in reports) == 1
        assert sum(r["hits"] for r in reports) == 1
        assert reports[0]["total_seconds"] == reports[1]["total_seconds"]
