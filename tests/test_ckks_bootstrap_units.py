"""Unit-level tests for bootstrapper internals (fast, no full pipeline)."""

import numpy as np
import pytest

from repro.ckks import Bootstrapper


class TestPrecomputation:
    def test_conjugate_side_matrices_vanish(self, boot_fhe, bootstrapper):
        """With (u_low + i*u_high) packing, U[:, n:] = i*U[:, :n] for the
        5**j slot orbit, so both conjugate-side transforms are zero and
        C2S/S2C are single complex-linear maps."""
        bs, _ = bootstrapper
        assert bs._c2s_conj is None
        assert bs._s2c_conj is None
        assert bs._c2s_direct is not None
        assert bs._s2c_direct is not None

    def test_embedding_halves_relation(self, boot_fhe):
        enc = boot_fhe.context.encoder
        u = enc.embedding_matrix()
        n = boot_fhe.params.slot_count
        assert np.max(np.abs(u[:, n:] - 1j * u[:, :n])) < 1e-9

    def test_required_galois_elements_include_conjugation(
            self, boot_fhe, bootstrapper):
        bs, _ = bootstrapper
        elements = bs.required_galois_elements()
        assert boot_fhe.context.conjugation_element in elements
        assert len(elements) > 4

    def test_minimum_levels_fits_chain(self, boot_fhe, bootstrapper):
        bs, _ = bootstrapper
        assert bs.minimum_levels() <= boot_fhe.context.max_level

    def test_dense_secret_rejected(self, toy_fhe):
        with pytest.raises(ValueError, match="sparse"):
            Bootstrapper(toy_fhe.context, toy_fhe.evaluator)


class TestModRaiseDetails:
    def test_raise_from_above_level_zero(self, boot_fhe, bootstrapper,
                                         rng):
        """mod_raise drops higher-level inputs to 0 first."""
        bs, _ = bootstrapper
        z = rng.normal(scale=0.3, size=boot_fhe.params.slot_count)
        ct = boot_fhe.encrypt(z, level=3)
        raised = bs.mod_raise(ct)
        assert raised.level == boot_fhe.context.max_level
        assert raised.scale == float(bs.q0)

    def test_q0_is_first_modulus(self, boot_fhe, bootstrapper):
        bs, _ = bootstrapper
        assert bs.q0 == boot_fhe.context.rns.moduli[0]
