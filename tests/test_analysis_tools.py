"""Unit tests for the analysis package (census + table rendering)."""

import pytest

from repro.analysis import PAPER_TABLE1, format_table, parallelism_census
from repro.models import ModelGraph, Step, resnet18


class TestParallelismCensus:
    def test_units_and_jobs_accounted(self):
        g = ModelGraph(name="m", display_name="M")
        g.add(Step(kind="convbn", name="c1", procedure="ConvBN", level=5,
                   units=100, output_ciphertexts=4))
        g.add(Step(kind="convbn", name="c2", procedure="ConvBN", level=5,
                   units=300, output_ciphertexts=8))
        g.add(Step(kind="nonlinear", name="r", procedure="ReLU", level=5,
                   jobs=16, degree=9))
        g.add(Step(kind="bootstrap", name="b", procedure="Boot", level=10,
                   jobs=8))
        census = parallelism_census(g)
        assert census["ConvBN"]["min"] == 100
        assert census["ConvBN"]["max"] == 300
        assert census["Non-linear"]["min"] == 16
        # Ciphertext row merges boot jobs and layer outputs.
        assert census["Ciphertext"]["min"] == 4
        assert census["Ciphertext"]["max"] == 8

    def test_ops_attached_from_table1(self):
        census = parallelism_census(resnet18())
        ops = census["ConvBN"]["ops"]
        assert (ops.rotation, ops.cmult, ops.pmult, ops.hadd) \
            == (8, 0, 2, 7)

    def test_paper_reference_complete(self):
        for model, rows in PAPER_TABLE1.items():
            for row, (lo, hi) in rows.items():
                assert lo <= hi, (model, row)


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["A", "Bee"], [["x", 1.5], ["long", 2.0]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.50" in out
        assert "2.00" in out
        # All data lines share a width.
        assert len(lines[2]) == len(lines[1])

    def test_custom_float_format(self):
        out = format_table(["v"], [[3.14159]], float_fmt="{:.4f}")
        assert "3.1416" in out

    def test_integers_not_float_formatted(self):
        out = format_table(["v"], [[42]])
        assert "42" in out and "42.00" not in out
