"""Functional tests for PCMM/CCMM building blocks."""

import numpy as np
import pytest

from repro.ckks.matmul import (
    PlainMatrixProduct,
    ciphertext_dot,
    ciphertext_matrix_vector,
    required_rotation_steps_for_sum,
    sum_slots,
)

TOL = 5e-2


def _keys_for(fixture, steps):
    elements = [fixture.context.galois_element_for_step(s) for s in steps]
    return fixture.keygen.create_galois_keys(elements)


class TestSumSlots:
    def test_full_reduction(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        gk = _keys_for(deep_fhe, required_rotation_steps_for_sum(n))
        x = rng.normal(scale=0.3, size=n)
        out = sum_slots(deep_fhe.encrypt(x), deep_fhe.evaluator, gk)
        got = deep_fhe.decrypt(out).real
        assert np.max(np.abs(got - x.sum())) < TOL

    def test_block_reduction(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        width = 8
        gk = _keys_for(deep_fhe, required_rotation_steps_for_sum(width))
        x = rng.normal(scale=0.3, size=n)
        out = sum_slots(deep_fhe.encrypt(x), deep_fhe.evaluator, gk,
                        width=width)
        got = deep_fhe.decrypt(out).real
        # Slot 0 holds the sum of the first block.
        assert abs(got[0] - x[:width].sum()) < TOL

    def test_invalid_width(self, deep_fhe, rng):
        gk = _keys_for(deep_fhe, [1])
        ct = deep_fhe.encrypt(rng.normal(size=4))
        with pytest.raises(ValueError):
            sum_slots(ct, deep_fhe.evaluator, gk, width=3)
        with pytest.raises(ValueError):
            sum_slots(ct, deep_fhe.evaluator, gk,
                      width=4 * deep_fhe.params.slot_count)


class TestCiphertextDot:
    def test_inner_product(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        gk = _keys_for(deep_fhe, required_rotation_steps_for_sum(n))
        a = rng.normal(scale=0.3, size=n)
        b = rng.normal(scale=0.3, size=n)
        out = ciphertext_dot(
            deep_fhe.encrypt(a), deep_fhe.encrypt(b),
            deep_fhe.evaluator, deep_fhe.relin_key, gk,
        )
        got = deep_fhe.decrypt(out).real
        assert np.max(np.abs(got - a @ b)) < TOL


class TestPlainMatrixProduct:
    def test_rectangular_pcmm(self, deep_fhe, rng):
        n = deep_fhe.params.slot_count
        rows, cols = 8, n
        m = 0.2 * rng.normal(size=(rows, cols))
        pcmm = PlainMatrixProduct(deep_fhe.context, m)
        gk = _keys_for(deep_fhe, pcmm.required_rotation_steps())
        x = rng.normal(scale=0.4, size=cols)
        out = pcmm.apply(deep_fhe.encrypt(x), deep_fhe.evaluator, gk)
        got = deep_fhe.decrypt(out).real[:rows]
        assert np.max(np.abs(got - m @ x)) < TOL

    def test_oversized_matrix_rejected(self, deep_fhe):
        n = deep_fhe.params.slot_count
        with pytest.raises(ValueError):
            PlainMatrixProduct(deep_fhe.context, np.zeros((n + 1, 2)))

    def test_non_2d_rejected(self, deep_fhe):
        with pytest.raises(ValueError):
            PlainMatrixProduct(deep_fhe.context, np.zeros(4))


class TestCiphertextMatrixVector:
    def test_encrypted_matrix_times_encrypted_vector(self, deep_fhe, rng):
        """The CCMM pattern: both operands encrypted."""
        n = deep_fhe.params.slot_count
        gk = _keys_for(deep_fhe, required_rotation_steps_for_sum(n))
        rows = 3
        m = rng.normal(scale=0.3, size=(rows, n))
        x = rng.normal(scale=0.3, size=n)
        row_cts = [deep_fhe.encrypt(m[i]) for i in range(rows)]
        ct_x = deep_fhe.encrypt(x)
        outs = ciphertext_matrix_vector(
            row_cts, ct_x, deep_fhe.evaluator, deep_fhe.relin_key, gk,
            width=n,
        )
        for i, out in enumerate(outs):
            got = deep_fhe.decrypt(out).real[0]
            assert abs(got - m[i] @ x) < TOL

    def test_empty_rows_rejected(self, deep_fhe, rng):
        gk = _keys_for(deep_fhe, [1])
        ct = deep_fhe.encrypt(rng.normal(size=4))
        with pytest.raises(ValueError):
            ciphertext_matrix_vector([], ct, deep_fhe.evaluator,
                                     deep_fhe.relin_key, gk, width=4)
