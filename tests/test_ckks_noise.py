"""Tests for the noise estimator against measured ciphertext noise."""

import numpy as np
import pytest

from repro.ckks.noise import NoiseEstimator, measure_noise


@pytest.fixture(scope="module")
def estimator(toy_fhe):
    return NoiseEstimator(toy_fhe.context)


def _measure(fixture, ct, expected):
    return measure_noise(fixture.decryptor, fixture.context.encoder, ct,
                         expected)


class TestMeasuredNoise:
    def test_fresh_noise_within_estimate(self, toy_fhe, estimator, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        measured = _measure(toy_fhe, ct, z)
        assert measured > 0
        # The average-case estimate should be the right order of
        # magnitude: within 10x either way.
        assert measured < 10 * estimator.fresh() * 10
        assert measured > estimator.fresh() / 100

    def test_add_grows_noise(self, toy_fhe, rng):
        za, zb = toy_fhe.random_vector(rng), toy_fhe.random_vector(rng)
        ca, cb = toy_fhe.encrypt(za), toy_fhe.encrypt(zb)
        n_a = _measure(toy_fhe, ca, za)
        summed = toy_fhe.evaluator.add(ca, cb)
        n_sum = _measure(toy_fhe, summed, za + zb)
        assert n_sum > 0.5 * n_a  # grows (roughly additive)
        assert n_sum < 10 * n_a

    def test_rotation_adds_keyswitch_noise(self, toy_fhe, estimator, rng):
        z = toy_fhe.random_vector(rng)
        ct = toy_fhe.encrypt(z)
        base = _measure(toy_fhe, ct, z)
        rotated = toy_fhe.evaluator.rotate(ct, 1, toy_fhe.galois_keys)
        after = _measure(toy_fhe, rotated, np.roll(z, -1))
        assert after >= base * 0.5
        # Keyswitch noise is bounded by the estimator's term (x20 slack).
        assert after - base < 20 * estimator.keyswitch() + base

    def test_precision_still_usable_after_depth(self, toy_fhe, rng):
        """After the full level budget, precision remains above the
        collapse threshold — the parameters are sized correctly."""
        z = rng.uniform(0.2, 0.8, toy_fhe.params.slot_count)
        ct = toy_fhe.encrypt(z)
        ev = toy_fhe.evaluator
        expected = z
        for _ in range(2):
            ct = ev.rescale(ev.square(ct, toy_fhe.relin_key))
            expected = expected ** 2
        measured = _measure(toy_fhe, ct, expected)
        est = NoiseEstimator(toy_fhe.context)
        assert not est.budget_exhausted(measured, ct.scale)


class TestEstimatorArithmetic:
    def test_add_rule(self, estimator):
        assert estimator.add(3.0, 4.0) == 7.0

    def test_rescale_shrinks_noise(self, estimator, toy_fhe):
        q = toy_fhe.context.rns.moduli[1]
        big = 1e9
        assert estimator.rescale(big, q) < big / 1e6 + 1e4

    def test_precision_bits(self, estimator):
        assert estimator.precision_bits(1.0, 2.0 ** 20) \
            == pytest.approx(20.0)
        assert estimator.precision_bits(0.0, 2.0 ** 20) == float("inf")

    def test_budget_flag(self, estimator):
        scale = 2.0 ** 25
        assert not estimator.budget_exhausted(scale / 2 ** 10, scale)
        assert estimator.budget_exhausted(scale / 2, scale)

    def test_multiply_rule_dominates_components(self, estimator):
        out = estimator.multiply(10.0, 20.0, 1e6, 2e6)
        assert out >= 10.0 * 2e6
        assert out >= 20.0 * 1e6

    def test_sparse_secret_reduces_rounding_term(self, boot_fhe, toy_fhe):
        sparse = NoiseEstimator(boot_fhe.context)
        dense = NoiseEstimator(toy_fhe.context)
        assert sparse._s_norm < dense._s_norm
