"""Tests for the CLI, simulation tracing, and Gantt rendering."""

import pytest

from repro.analysis import render_gantt, trace_summary
from repro.core.cli import build_parser, main
from repro.hw import hydra_cluster
from repro.sim import ProgramBuilder, Simulator
from repro.sim.result import TraceEvent


class _Capture:
    def __init__(self):
        self.lines = []

    def __call__(self, text=""):
        self.lines.append(str(text))

    @property
    def text(self):
        return "\n".join(self.lines)


class TestTraceRecording:
    def test_trace_disabled_by_default(self):
        b = ProgramBuilder(1)
        b.compute(0, 1.0, tag="x")
        res = Simulator(hydra_cluster(1, 1)).run(b.build())
        assert res.trace == []

    def test_compute_and_comm_events_recorded(self):
        b = ProgramBuilder(2)
        i = b.compute(0, 1.0, tag="work")
        b.transfer(0, 1, 1e6, after=i, tag="xfer")
        b.compute(1, 0.5, tag="work", needs_recv=True)
        res = Simulator(hydra_cluster(1, 2), trace=True).run(b.build())
        kinds = {ev.kind for ev in res.trace}
        assert kinds == {"compute", "send", "recv"}
        computes = [ev for ev in res.trace if ev.kind == "compute"]
        assert len(computes) == 2
        assert all(ev.end > ev.start for ev in res.trace)

    def test_zero_duration_tasks_not_traced(self):
        b = ProgramBuilder(1)
        b.compute(0, 0.0)
        res = Simulator(hydra_cluster(1, 1), trace=True).run(b.build())
        assert res.trace == []

    def test_trace_summary(self):
        trace = [
            TraceEvent(0, "compute", "a", 0.0, 1.0),
            TraceEvent(0, "compute", "a", 1.0, 3.0),
            TraceEvent(1, "send", "b", 0.0, 0.5),
        ]
        rows = trace_summary(trace)
        assert rows == [
            {"kind": "compute", "tag": "a",
             "busy_seconds": pytest.approx(3.0)},
            {"kind": "send", "tag": "b",
             "busy_seconds": pytest.approx(0.5)},
        ]

    def test_trace_summary_is_json_serializable(self):
        import json

        rows = trace_summary([TraceEvent(0, "compute", "a", 0.0, 1.0)])
        assert json.loads(json.dumps(rows)) == rows

    def test_trace_events_carry_step_and_channel(self):
        b = ProgramBuilder(2)
        i = b.compute(0, 1.0, tag="work")
        b.transfer(0, 1, 1e6, after=i, tag="xfer")
        b.compute(1, 0.5, tag="work", needs_recv=True)
        res = Simulator(hydra_cluster(1, 2), trace=True).run(
            b.build(), step="conv1")
        assert all(ev.step == "conv1" for ev in res.trace)
        send = next(ev for ev in res.trace if ev.kind == "send")
        assert send.channel == "0->1"
        compute = next(ev for ev in res.trace if ev.kind == "compute")
        assert compute.channel is None


class TestGanttRendering:
    def test_empty_trace(self):
        assert "empty" in render_gantt([])

    def test_rows_per_card(self):
        trace = [
            TraceEvent(0, "compute", "a", 0.0, 1.0),
            TraceEvent(1, "send", "b", 0.0, 0.5),
        ]
        out = render_gantt(trace, width=20)
        assert "card   0" in out
        assert "card   1" in out
        assert "#" in out and ">" in out

    def test_node_cap(self):
        trace = [TraceEvent(i, "compute", "a", 0.0, 1.0)
                 for i in range(20)]
        out = render_gantt(trace, max_nodes=4)
        assert "16 more cards" in out

    def test_compute_wins_overlap_priority(self):
        trace = [
            TraceEvent(0, "recv", "x", 0.0, 1.0),
            TraceEvent(0, "compute", "x", 0.0, 1.0),
        ]
        out = render_gantt(trace, width=10)
        row = [l for l in out.splitlines() if l.startswith("card")][0]
        assert "#" in row and "." not in row

    def test_zero_makespan(self):
        trace = [TraceEvent(0, "compute", "a", 0.0, 0.0)]
        assert "zero-length" in render_gantt(trace)

    def test_event_at_makespan_boundary_still_paints(self):
        # A zero/sub-pixel event ending exactly at the makespan must
        # occupy the final column instead of being rounded off the grid.
        width = 10
        trace = [
            TraceEvent(0, "compute", "a", 0.0, 10.0),
            TraceEvent(1, "send", "b", 10.0, 10.0),
            TraceEvent(2, "recv", "c", 9.99, 10.0),
        ]
        out = render_gantt(trace, makespan=10.0, width=width)
        rows = {int(l.split("|")[0].split()[1]): l.split("|")[1]
                for l in out.splitlines() if l.startswith("card")}
        assert rows[0] == "#" * width
        assert rows[1][-1] == ">"
        assert rows[2][-1] == "."

    def test_max_nodes_cap_with_large_cluster(self):
        trace = [TraceEvent(i, "compute", "a", 0.0, 1.0)
                 for i in range(40)]
        out = render_gantt(trace, max_nodes=16)
        shown = [l for l in out.splitlines() if l.startswith("card")]
        assert len(shown) == 16
        assert "24 more cards" in out


class TestCli:
    def test_list(self):
        cap = _Capture()
        assert main(["list"], out=cap) == 0
        assert "Hydra-M" in cap.text
        assert "resnet18" in cap.text

    def test_run(self):
        cap = _Capture()
        assert main(["run", "-s", "Hydra-M", "-b", "resnet18",
                     "--no-energy"], out=cap) == 0
        assert "total time" in cap.text
        assert "ConvBN" in cap.text

    def test_resources(self):
        cap = _Capture()
        assert main(["resources"], out=cap) == 0
        assert "DSP" in cap.text

    def test_dft(self):
        cap = _Capture()
        assert main(["dft", "--slots", "12", "--cards", "8"],
                    out=cap) == 0
        assert "radices" in cap.text

    def test_trace_default_step(self):
        cap = _Capture()
        assert main(["trace", "-s", "Hydra-M", "-b", "resnet18"],
                    out=cap) == 0
        assert "card   0" in cap.text

    def test_trace_unknown_step(self):
        cap = _Capture()
        assert main(["trace", "-s", "Hydra-M", "-b", "resnet18",
                     "--step", "nonexistent"], out=cap) == 1
        assert "no step named" in cap.text

    def test_trace_chrome_format_validates(self, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        path = tmp_path / "t.json"
        cap = _Capture()
        assert main(["trace", "--format", "chrome",
                     "--out", str(path)], out=cap) == 0
        assert str(path) in cap.text
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(doc) > 0
        # Both sim tracks and host-side planner spans must be present.
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {0, 1}
        names = {e["name"] for e in doc["traceEvents"]}
        assert "plan.step" in names

    def test_trace_summary_format(self):
        import json

        cap = _Capture()
        assert main(["trace", "--format", "summary",
                     "-s", "Hydra-M", "-b", "resnet18"], out=cap) == 0
        payload = json.loads(cap.text)
        assert payload["system"] == "Hydra-M"
        assert payload["busy"] and payload["overlap"]["cards"]

    def test_trace_gantt_to_file(self, tmp_path):
        path = tmp_path / "gantt.txt"
        cap = _Capture()
        assert main(["trace", "--out", str(path)], out=cap) == 0
        assert "card   0" in path.read_text(encoding="utf-8")

    def test_profile_prints_overlap_and_metrics(self, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        path = tmp_path / "trace.json"
        cap = _Capture()
        assert main(["profile", "Hydra-M", "resnet18",
                     "--out", str(path)], out=cap) == 0
        assert "Per-card compute/communication overlap" in cap.text
        # One row per card with an overlap percentage.
        rows = [l for l in cap.text.splitlines()
                if l.strip().startswith(tuple("01234567")) and "%" in l]
        assert len(rows) >= 8
        assert "metric counters:" in cap.text
        assert "sched.planner.steps_mapped" in cap.text
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(doc) > 0

    def test_sweep(self):
        cap = _Capture()
        assert main(["sweep", "-b", "resnet18", "--cards", "1", "2"],
                    out=cap) == 0
        assert "Speedup" in cap.text

    def test_report(self):
        cap = _Capture()
        assert main(["report", "-b", "resnet18"], out=cap) == 0
        assert "SHARP" in cap.text
        assert "Hydra-L speedup" in cap.text

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
