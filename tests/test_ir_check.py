"""Executed-vs-modeled cross-validation: the `repro validate-ops` gate.

The functional tests here run real homomorphic layers with an op
collector active and require the closed-form builders in
``repro.ir.check`` to predict the executed counts *exactly* (the
tolerance policy in DESIGN.md).  The lowering tests pin
``OpCostModel.lower`` byte-for-byte to the legacy ``bundle()`` if-chain.
"""

import numpy as np
import pytest

from repro.ir import FheOp, OpTrace, collect_ops, compare_traces
from repro.ir.check import (
    modeled_bsgs_trace,
    modeled_conv_trace,
    modeled_polyeval_trace,
)


class TestCompareTraces:
    def test_exact_match_ok(self):
        t = OpTrace.single(FheOp.HADD, 3, level=1)
        cmp = compare_traces("w", t, t.scaled(1))
        assert cmp.ok and not cmp.failures

    def test_spurious_executed_op_surfaces(self):
        executed = OpTrace.single(FheOp.HADD, 1) + OpTrace.single(
            FheOp.ROTATION, 1)
        modeled = OpTrace.single(FheOp.HADD, 1)
        cmp = compare_traces("w", executed, modeled)
        assert not cmp.ok
        assert [row.op for row in cmp.failures] == ["rotation"]

    def test_missing_executed_op_surfaces(self):
        executed = OpTrace.single(FheOp.HADD, 1)
        modeled = executed + OpTrace.single(FheOp.KEYSWITCH, 2)
        cmp = compare_traces("w", executed, modeled)
        assert [row.op for row in cmp.failures] == ["keyswitch"]

    def test_tolerance_policy(self):
        executed = OpTrace.single(FheOp.NTT, 101)
        modeled = OpTrace.single(FheOp.NTT, 100)
        assert not compare_traces("w", executed, modeled).ok
        assert compare_traces("w", executed, modeled,
                              tolerances={"ntt": 2}).ok

    def test_render_marks_failures(self):
        cmp = compare_traces("w", OpTrace.single(FheOp.HADD, 2),
                             OpTrace.single(FheOp.HADD, 1))
        assert "!!" in cmp.render()
        assert "DIVERGED" in cmp.render()


class TestExecutedVsModeledFunctional:
    """Real CKKS layers against the closed-form op arithmetic."""

    def test_conv2d_counts(self, deep_fhe, rng):
        from repro.ckks.convolution import Conv2d

        kernel = rng.normal(size=(3, 3))
        conv = Conv2d(deep_fhe.context, kernel, 8, 8)
        gk = deep_fhe.keygen.create_galois_keys(
            [deep_fhe.context.galois_element_for_step(s)
             for s in conv.required_rotation_steps()])
        ct = deep_fhe.encrypt(rng.normal(size=64))
        with collect_ops() as executed:
            conv.apply(ct, deep_fhe.evaluator, gk)
        modeled = modeled_conv_trace(conv._taps,
                                     deep_fhe.params.slot_count)
        assert compare_traces("conv", executed, modeled).ok

    def test_sparse_conv_counts(self, deep_fhe, rng):
        """Zero kernel entries drop taps; the builder must track that."""
        from repro.ckks.convolution import Conv2d

        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0  # identity tap: no rotation at all
        kernel[0, 1] = 0.5
        conv = Conv2d(deep_fhe.context, kernel, 8, 8)
        gk = deep_fhe.keygen.create_galois_keys(
            [deep_fhe.context.galois_element_for_step(s)
             for s in conv.required_rotation_steps()])
        with collect_ops() as executed:
            conv.apply(deep_fhe.encrypt(rng.normal(size=64)),
                       deep_fhe.evaluator, gk)
        modeled = modeled_conv_trace(conv._taps,
                                     deep_fhe.params.slot_count)
        assert compare_traces("sparse", executed, modeled).ok
        assert executed.total(FheOp.ROTATION) == 1

    @pytest.mark.parametrize("baby_steps", [None, 4])
    def test_bsgs_counts(self, deep_fhe, rng, baby_steps):
        from repro.ckks import LinearTransform

        n = deep_fhe.params.slot_count
        lt = LinearTransform(deep_fhe.context,
                             0.3 * rng.normal(size=(n, n)),
                             baby_steps=baby_steps)
        gk = deep_fhe.keygen.create_galois_keys(
            [deep_fhe.context.galois_element_for_step(s)
             for s in lt.required_rotation_steps()])
        with collect_ops() as executed:
            lt.apply(deep_fhe.encrypt(rng.normal(size=n)),
                     deep_fhe.evaluator, gk)
        modeled = modeled_bsgs_trace(lt.diagonal_indices, lt.baby_steps, n)
        assert compare_traces("bsgs", executed, modeled).ok

    def test_bsgs_identity_rotations_are_free(self, deep_fhe, rng):
        """The Eq.-1 refinement: a permutation matrix has one diagonal,
        so the whole matvec is rotation + pmult with no folds."""
        from repro.ckks import LinearTransform

        n = deep_fhe.params.slot_count
        perm = np.roll(np.eye(n), -3, axis=1)
        lt = LinearTransform(deep_fhe.context, perm)
        gk = deep_fhe.keygen.create_galois_keys(
            [deep_fhe.context.galois_element_for_step(s)
             for s in lt.required_rotation_steps()])
        with collect_ops() as executed:
            lt.apply(deep_fhe.encrypt(rng.normal(size=n)),
                     deep_fhe.evaluator, gk)
        modeled = modeled_bsgs_trace(lt.diagonal_indices, lt.baby_steps, n)
        assert compare_traces("perm", executed, modeled).ok
        assert executed.total(FheOp.HADD) == 0

    @pytest.mark.parametrize("degree", [3, 5, 7])
    def test_polyeval_counts(self, deep_fhe, rng, degree):
        from repro.ckks import evaluate_polynomial

        coeffs = rng.normal(size=degree + 1) * 0.1
        ct = deep_fhe.encrypt(
            rng.normal(size=deep_fhe.params.slot_count) * 0.1)
        with collect_ops() as executed:
            evaluate_polynomial(ct, coeffs, deep_fhe.evaluator,
                                deep_fhe.relin_key)
        modeled = modeled_polyeval_trace(coeffs)
        assert compare_traces(f"poly{degree}", executed, modeled).ok

    def test_polyeval_sparse_coefficients(self, deep_fhe, rng):
        """Odd polynomial (zero even coefficients): fewer terms, and the
        power tree only builds what the nonzero powers need."""
        from repro.ckks import evaluate_polynomial

        coeffs = [0.0, 0.3, 0.0, -0.05, 0.0, 0.01, 0.0, -0.002]
        ct = deep_fhe.encrypt(
            rng.normal(size=deep_fhe.params.slot_count) * 0.1)
        with collect_ops() as executed:
            evaluate_polynomial(ct, coeffs, deep_fhe.evaluator,
                                deep_fhe.relin_key)
        modeled = modeled_polyeval_trace(coeffs)
        assert compare_traces("odd-poly", executed, modeled).ok


class TestLowerByteIdentity:
    """``lower()`` must price Table-I bundles bit-identically to the
    legacy ``bundle()`` if-chain it replaced."""

    @staticmethod
    def _legacy_bundle(cost, bundle, level):
        from repro.cost.model import OpComponents

        total = OpComponents()
        if bundle.rotation:
            total = total + cost.rotation(level).scaled(bundle.rotation)
        if bundle.cmult:
            total = total + cost.cmult(level).scaled(bundle.cmult)
        if bundle.pmult:
            total = total + cost.pmult(level).scaled(bundle.pmult)
        if bundle.hadd:
            total = total + cost.hadd(level).scaled(bundle.hadd)
        if bundle.rescale:
            total = total + cost.rescale(level).scaled(bundle.rescale)
        return total

    @pytest.fixture(scope="class")
    def cost(self):
        from repro.cost import OpCostModel
        from repro.hw import HYDRA_CARD

        return OpCostModel(HYDRA_CARD)

    @pytest.mark.parametrize("level", [1, 10, 20])
    def test_all_table1_bundles(self, cost, level):
        from repro.cost.ops import (
            CCMM_UNIT,
            CONVBN_UNIT,
            FC_UNIT,
            NONLINEAR_UNIT,
            PCMM_UNIT,
            POOLING_UNIT,
        )

        for bundle in (CONVBN_UNIT, POOLING_UNIT, FC_UNIT, PCMM_UNIT,
                       CCMM_UNIT, NONLINEAR_UNIT):
            want = self._legacy_bundle(cost, bundle, level)
            assert cost.bundle(bundle, level) == want
            assert cost.lower(bundle.trace(), level=level) == want
            assert cost.lower(bundle.trace(level=level)) == want

    def test_lower_requires_a_level(self, cost):
        with pytest.raises(ValueError):
            cost.lower(OpTrace.single(FheOp.HADD, 1))

    def test_lower_rejects_unpriced_ops(self, cost):
        with pytest.raises(ValueError):
            cost.lower(OpTrace.single(FheOp.NTT, 1, level=3))

    def test_baselines_lower_the_same_ir(self):
        from repro.baselines import fab_cost_model, poseidon_cost_model
        from repro.cost.ops import CONVBN_UNIT

        trace = CONVBN_UNIT.trace(level=15)
        for model in (fab_cost_model(), poseidon_cost_model()):
            assert model.lower(trace).seconds > 0


class TestRunValidation:
    def test_tiny_suite_passes(self):
        from repro.ir.validate import run_validation

        report = run_validation(tiny=True)
        assert report.ok
        names = [c.name for c in report.comparisons]
        assert names == ["convbn_3x3", "fc_bsgs", "nonlinear_polyeval_d7",
                         "bootstrap_coeff_to_slot", "attention_block"]
        assert "PASS" in report.render()

    @pytest.mark.parametrize("op", ["rotation", "automorphism"])
    def test_perturbed_suite_fails(self, op):
        """Perturbing any op — even one never executed — must bite."""
        from repro.ir.validate import run_validation

        report = run_validation(tiny=True, perturb=op)
        assert not report.ok
        assert "FAIL" in report.render()

    def test_cli_exit_codes(self, tmp_path):
        import json

        from repro.core.cli import main

        sink = []
        assert main(["validate-ops", "--tiny"], out=sink.append) == 0
        out_file = tmp_path / "report.json"
        assert main(["validate-ops", "--tiny", "--perturb", "hadd",
                     "--out", str(out_file)], out=sink.append) == 1
        payload = json.loads(out_file.read_text())
        assert payload["ok"] is False
        assert payload["perturbed"] == "hadd"
