"""Integration tests: full-system runs reproduce the paper's shapes.

These assert the *claims* of the evaluation section with generous bounds:
who wins, by roughly what factor, and where communication overheads land.
Exact numbers live in EXPERIMENTS.md; these tests keep the shape locked.
"""

import pytest

from repro.core import HydraSystem


@pytest.fixture(scope="module")
def r18():
    return {
        name: HydraSystem.named(name).run("resnet18")
        for name in ("Hydra-S", "Hydra-M", "Hydra-L", "FAB-S", "FAB-M",
                     "Poseidon")
    }


@pytest.fixture(scope="module")
def bert():
    return {
        name: HydraSystem.named(name).run("bert_base")
        for name in ("Hydra-S", "Hydra-M", "Hydra-L", "FAB-M")
    }


class TestSingleCardAnchors:
    """Hydra-S is calibrated to Table II; baselines must track it."""

    def test_hydra_s_matches_table2(self, r18):
        assert r18["Hydra-S"].total_seconds == pytest.approx(41.29, rel=0.1)

    def test_fab_s_ratio(self, r18):
        ratio = r18["FAB-S"].total_seconds / r18["Hydra-S"].total_seconds
        assert 2.5 < ratio < 4.0  # paper: 2.8-3.2x

    def test_poseidon_ratio(self, r18):
        ratio = r18["Poseidon"].total_seconds / r18["Hydra-S"].total_seconds
        assert 1.1 < ratio < 1.6  # paper: ~1.3x


class TestScaleOut:
    def test_hydra_m_speedup(self, r18):
        speedup = r18["Hydra-M"].speedup_over(r18["Hydra-S"])
        assert 5.5 < speedup < 9.0  # paper: 6.3-7.5x for CNNs

    def test_hydra_l_speedup(self, r18):
        speedup = r18["Hydra-L"].speedup_over(r18["Hydra-S"])
        assert 15.0 < speedup < 40.0  # paper: 27.7x for ResNet-18

    def test_llm_scales_better_than_cnn_at_64(self, r18, bert):
        cnn = r18["Hydra-L"].speedup_over(r18["Hydra-S"])
        llm = bert["Hydra-L"].speedup_over(bert["Hydra-S"])
        assert llm > cnn  # paper Section V-H

    def test_hydra_m_beats_fab_m(self, r18, bert):
        for runs in (r18, bert):
            ratio = (runs["FAB-M"].total_seconds
                     / runs["Hydra-M"].total_seconds)
            assert 2.0 < ratio < 6.0  # paper: 2.8-3.3x


class TestCommunicationOverhead:
    def test_single_card_has_no_comm(self, r18):
        assert r18["Hydra-S"].bytes_transferred == 0
        assert r18["Hydra-S"].comm_overhead_fraction == 0.0

    def test_hydra_m_overhead_small(self, r18):
        assert r18["Hydra-M"].comm_overhead_fraction < 0.25

    def test_overhead_grows_with_cards(self, r18):
        assert (r18["Hydra-L"].comm_overhead_fraction
                > r18["Hydra-M"].comm_overhead_fraction)

    def test_fab_overhead_exceeds_hydra(self, r18):
        assert (r18["FAB-M"].comm_overhead_fraction
                > r18["Hydra-M"].comm_overhead_fraction)

    def test_opt_comm_overhead_tiny_on_hydra_m(self):
        r = HydraSystem.named("Hydra-M").run("opt_6_7b")
        # Paper: 0.04% on Hydra-M; allow up to 2%.
        assert r.comm_overhead_fraction < 0.02


class TestEnergy:
    def test_energy_populated(self, r18):
        acc = r18["Hydra-M"].energy
        assert acc is not None and acc.total > 0

    def test_memory_share_dominates(self, r18):
        """Paper Fig. 7: memory access is the largest dynamic share."""
        breakdown = r18["Hydra-S"].energy.breakdown()
        dynamic = {k: v for k, v in breakdown.items() if k != "static"}
        assert max(dynamic, key=dynamic.get) == "hbm"

    def test_dtu_share_below_one_percent(self, r18):
        """Paper Section V-C: DTU accounts for <1% even multi-card."""
        breakdown = r18["Hydra-M"].energy.breakdown()
        assert breakdown["dtu"] < 0.01

    def test_single_card_energy_lowest(self, r18):
        assert (r18["Hydra-S"].energy.total
                < r18["Hydra-M"].energy.total
                < r18["Hydra-L"].energy.total * 1.01)


class TestSystemFacade:
    def test_named_systems(self):
        assert HydraSystem.named("Hydra-M").total_cards == 8
        with pytest.raises(KeyError):
            HydraSystem.named("Hydra-XXL")

    def test_custom_deployment(self):
        sys = HydraSystem.custom(2, 4)
        assert sys.total_cards == 8
        assert sys.cluster.servers == 2

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            HydraSystem.hydra_s().run("alexnet")

    def test_run_cache(self, r18):
        again = HydraSystem.named("Hydra-S").run("resnet18")
        assert again is r18["Hydra-S"]

    def test_procedure_spans_sum_to_total(self, r18):
        r = r18["Hydra-M"]
        assert sum(r.procedure_span.values()) == pytest.approx(
            r.total_seconds, rel=1e-6
        )
