"""Quickstart: encrypted arithmetic + a scale-out inference simulation.

Runs in well under a minute::

    python examples/quickstart.py

Part 1 exercises the functional CKKS substrate (the cryptography Hydra
accelerates): encrypt two vectors, add, multiply, rotate, decrypt.
Part 2 simulates ResNet-18 inference on the Hydra-M prototype (1 server,
8 FPGA cards) and prints the per-procedure time breakdown.
"""

import numpy as np

from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    toy_parameters,
)
from repro.core import HydraSystem


def part1_encrypted_arithmetic():
    print("=" * 64)
    print("Part 1 — functional CKKS: compute on encrypted vectors")
    print("=" * 64)
    ctx = CkksContext(toy_parameters(poly_degree=256, num_scale_moduli=4))
    keygen = KeyGenerator(ctx, seed=0)
    encryptor = Encryptor(ctx, keygen.create_public_key(), seed=1)
    decryptor = Decryptor(ctx, keygen.secret_key)
    evaluator = Evaluator(ctx)
    relin = keygen.create_relin_key()
    galois = keygen.create_galois_keys([ctx.galois_element_for_step(1)])

    x = np.array([0.5, -0.25, 1.0, 0.125])
    y = np.array([2.0, 4.0, -1.0, 0.5])
    ct_x = encryptor.encrypt_values(x)
    ct_y = encryptor.encrypt_values(y)

    ct_sum = evaluator.add(ct_x, ct_y)
    ct_prod = evaluator.rescale(evaluator.multiply(ct_x, ct_y, relin))
    ct_rot = evaluator.rotate(ct_x, 1, galois)

    print(f"x        = {x}")
    print(f"y        = {y}")
    print(f"x + y    = {np.round(decryptor.decrypt_values(ct_sum)[:4].real, 4)}")
    print(f"x * y    = {np.round(decryptor.decrypt_values(ct_prod)[:4].real, 4)}")
    print(f"rot(x,1) = {np.round(decryptor.decrypt_values(ct_rot)[:4].real, 4)}")
    print(f"levels: fresh={ct_x.level}, after multiply+rescale="
          f"{ct_prod.level}")


def part2_scale_out_inference():
    print()
    print("=" * 64)
    print("Part 2 — Hydra-M (8 cards): encrypted ResNet-18 inference")
    print("=" * 64)
    single = HydraSystem.hydra_s().run("resnet18")
    multi = HydraSystem.hydra_m().run("resnet18")
    print(f"Hydra-S (1 card):  {single.total_seconds:8.2f} s")
    print(f"Hydra-M (8 cards): {multi.total_seconds:8.2f} s  "
          f"({multi.speedup_over(single):.2f}x speedup)")
    print(f"communication overhead: "
          f"{100 * multi.comm_overhead_fraction:.1f}%")
    print("\nper-procedure time on Hydra-M:")
    for proc, span in sorted(multi.procedure_span.items(),
                             key=lambda kv: -kv[1]):
        print(f"  {proc:8s} {span:7.2f} s")


if __name__ == "__main__":
    part1_encrypted_arithmetic()
    part2_scale_out_inference()
