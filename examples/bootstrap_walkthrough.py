"""Bootstrapping, twice: functionally and as a scheduling problem.

Part 1 runs a *real* CKKS bootstrap at toy parameters: a level-0
ciphertext goes through ModRaise → CoeffToSlot → EvalExp/DAF →
SlotToCoeff and comes back at a higher level with its message intact —
the Fig. 3(b) pipeline, executed in actual ciphertext arithmetic.

Part 2 runs the paper's Table V analysis: the Eq. 1 cost model picks the
optimal DFT (Radix, bs) per prototype, showing why the multi-card optimum
differs from the single-card algorithmic optimum.

    python examples/bootstrap_walkthrough.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.ckks import (
    BootstrapKeys,
    Bootstrapper,
    CkksContext,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.cost import OpCostModel
from repro.hw import HYDRA_CARD
from repro.sched import estimate_bootstrap_time, optimal_dft_parameters


def part1_functional_bootstrap():
    print("=" * 64)
    print("Part 1 — a real CKKS bootstrap (toy parameters)")
    print("=" * 64)
    params = CkksParameters(
        poly_degree=128, first_modulus_bits=29, scale_bits=25,
        num_scale_moduli=18, special_modulus_bits=30,
        num_special_moduli=2, secret_hamming_weight=4,
    )
    ctx = CkksContext(params)
    keygen = KeyGenerator(ctx, seed=0)
    encryptor = Encryptor(ctx, keygen.create_public_key(), seed=1)
    decryptor = Decryptor(ctx, keygen.secret_key)
    evaluator = Evaluator(ctx)
    bootstrapper = Bootstrapper(ctx, evaluator, taylor_degree=7,
                                daf_iterations=6)
    keys = BootstrapKeys(
        relin_key=keygen.create_relin_key(),
        galois_keys=keygen.create_galois_keys(
            bootstrapper.required_galois_elements()
        ),
    )

    rng = np.random.default_rng(3)
    z = rng.normal(scale=0.3, size=params.slot_count)
    exhausted = encryptor.encrypt_values(z, level=0)
    print(f"input ciphertext: level {exhausted.level} "
          f"(no multiplications left)")
    t0 = time.time()
    refreshed = bootstrapper.bootstrap(exhausted, keys)
    err = np.max(np.abs(decryptor.decrypt_values(refreshed) - z))
    print(f"bootstrapped in {time.time() - t0:.1f}s: level "
          f"{exhausted.level} -> {refreshed.level}, message error {err:.4f}")

    squared = evaluator.rescale(
        evaluator.square(refreshed, keys.relin_key)
    )
    err2 = np.max(np.abs(decryptor.decrypt_values(squared) - z ** 2))
    print(f"the refreshed ciphertext multiplies again: x^2 error {err2:.4f}")


def part2_parameter_selection():
    print()
    print("=" * 64)
    print("Part 2 — DFT parameter selection (paper Table V / Eq. 1)")
    print("=" * 64)
    cost = OpCostModel(HYDRA_CARD)
    rows = []
    for cards, name in ((1, "Hydra-S"), (8, "Hydra-M"), (64, "Hydra-L")):
        params, dft_t = optimal_dft_parameters(cost, 15, cards)
        boot_t = estimate_bootstrap_time(cost, 15, cards)
        rows.append([name, str(params.radices), str(params.baby_steps),
                     dft_t * 1e3, boot_t * 1e3])
    print(format_table(
        ["Prototype", "Radix", "bs", "DFT (ms)", "Boot est. (ms)"],
        rows,
    ))
    print(
        "\nThe chosen bs shrinks with card count: replicated baby steps "
        "are pure overhead on wide groups, while giant steps parallelize "
        "(paper Section V-G)."
    )


if __name__ == "__main__":
    part1_functional_bootstrap()
    part2_parameter_selection()
