"""Bring your own model: build a custom CNN workload and size a cluster.

Uses the public :class:`repro.models.CnnBuilder` to describe a
VGG-flavored CNN, then asks the planner how many cards it takes to hit a
latency target — the capacity-planning question a Hydra operator would
actually ask.

    python examples/custom_model_study.py
"""

from repro.analysis import format_table
from repro.core import HydraSystem
from repro.hw import hydra_cluster
from repro.models import CnnBuilder


def build_model():
    b = CnnBuilder("vgg_flavored", input_hw=64, input_channels=3,
                   display_name="VGG-flavored CNN")
    b.conv(64).relu().conv(64).relu().pool(2)
    b.conv(128).relu().conv(128).relu().pool(2)
    b.conv(256).relu().conv(256).relu().pool(2)
    b.fc(100)
    return b.build()


def main():
    model = build_model()
    print(f"model: {model.display_name} — {len(model.steps)} steps, "
          f"{len(model.steps_of_kind('bootstrap'))} bootstraps\n")

    target_seconds = 5.0
    rows = []
    chosen = None
    for cards in (1, 2, 4, 8, 16, 32, 64):
        servers = 1 if cards <= 8 else cards // 8
        per_server = cards if cards <= 8 else 8
        system = HydraSystem(hydra_cluster(servers, per_server))
        result = system.run(model, with_energy=False)
        rows.append([cards, result.total_seconds,
                     100.0 * result.comm_overhead_fraction])
        if chosen is None and result.total_seconds <= target_seconds:
            chosen = cards
    print(format_table(["Cards", "Time (s)", "Comm %"], rows))
    if chosen:
        print(f"\n=> {chosen} cards reach the {target_seconds:.0f}s "
              f"latency target.")
    else:
        print(f"\n=> even 64 cards miss the {target_seconds:.0f}s target; "
              f"this model needs more parallelism or better packing.")


if __name__ == "__main__":
    main()
