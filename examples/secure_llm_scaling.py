"""Scaling study: secure LLM inference from 1 to 64 FPGA cards.

Reproduces the paper's core scalability argument on BERT-base: as cards
are added, the large matrix-multiplication parallelism of transformers
keeps the speedup curve steep, while communication overhead stays small
thanks to the DTU + switch fabric and the overlap-aware task mapping.

    python examples/secure_llm_scaling.py
"""

from repro.analysis import format_table
from repro.core import HydraSystem
from repro.hw import hydra_cluster


def main():
    benchmark = "bert_base"
    print(f"Scaling {benchmark} across Hydra deployments\n")
    rows = []
    baseline = None
    for cards in (1, 2, 4, 8, 16, 32, 64):
        servers = 1 if cards <= 8 else cards // 8
        per_server = cards if cards <= 8 else 8
        system = HydraSystem(hydra_cluster(servers, per_server))
        result = system.run(benchmark, with_energy=False)
        if baseline is None:
            baseline = result
        speedup = baseline.total_seconds / result.total_seconds
        rows.append([
            cards,
            f"{servers}x{per_server}",
            result.total_seconds,
            speedup,
            100.0 * speedup / cards,
            100.0 * result.comm_overhead_fraction,
        ])
    print(format_table(
        ["Cards", "Topology", "Time (s)", "Speedup", "Efficiency %",
         "Comm %"],
        rows,
    ))
    print(
        "\nNote how efficiency stays high through 64 cards: BERT's PCMM/"
        "CCMM layers expose tens of thousands of parallel units (paper "
        "Table I), far beyond the card count."
    )


if __name__ == "__main__":
    main()
