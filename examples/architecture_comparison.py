"""Architecture shoot-out: why scale-out beats scale-up — and why the
fabric matters.

Runs ResNet-18 on every predefined deployment (Hydra prototypes, FAB's
host-mediated multi-card architecture, Poseidon), with the *same* task
mapping everywhere, and prints runtime, speedup, and communication
overhead — a miniature of paper Table II + Fig. 8.  The deployments are
fanned out over worker processes through the parallel runtime.

    python examples/architecture_comparison.py
"""

from repro.analysis import format_table
from repro.runtime import execute, paper_grid


def main():
    benchmark = "resnet18"
    print(f"Benchmark: {benchmark} (ImageNet, FHE, paper parameters)\n")
    outcome = execute(paper_grid(benchmarks=[benchmark],
                                 with_energy=False), jobs=4)
    results = {
        rr.request.system_name: rr.result for rr in outcome
    }
    fab_s = results["FAB-S"].total_seconds
    rows = []
    for name, r in sorted(results.items(),
                          key=lambda kv: -kv[1].total_seconds):
        rows.append([
            name,
            r.total_seconds,
            fab_s / r.total_seconds,
            100.0 * r.comm_overhead_fraction,
            r.bytes_transferred / 1e9,
        ])
    print(format_table(
        ["System", "Time (s)", "Speedup vs FAB-S", "Comm %", "GB moved"],
        rows,
    ))
    hydra_m = results["Hydra-M"]
    fab_m = results["FAB-M"]
    print(
        f"\nSame 8 cards, same mapping: Hydra-M is "
        f"{fab_m.total_seconds / hydra_m.total_seconds:.1f}x faster than "
        f"FAB-M purely from the DTU + switch fabric and hardware "
        f"handshake synchronization (paper Section V-B)."
    )
    print(f"\nruntime: {outcome.manifest.summary()}")


if __name__ == "__main__":
    main()
