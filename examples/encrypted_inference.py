"""End-to-end encrypted inference on the real CKKS substrate.

A tiny two-layer network — a dense layer followed by a polynomial
activation (the "Non-linear" layer of paper Table I) and a second dense
layer — evaluated *homomorphically*: the client encrypts its features,
the server computes on ciphertexts only, the client decrypts the result.

This is the computation Hydra accelerates, at laptop-scale parameters::

    python examples/encrypted_inference.py
"""

import numpy as np

from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    LinearTransform,
    evaluate_polynomial,
    toy_parameters,
)

#: Smooth degree-2 activation (the square activation family used by
#: early FHE CNNs; paper-style non-linear layers are higher degree).
ACTIVATION = [0.0, 0.5, 0.25]


def plaintext_reference(x, w1, w2):
    h = w1 @ x
    h = 0.5 * h + 0.25 * h ** 2
    return w2 @ h


def main():
    rng = np.random.default_rng(7)
    params = toy_parameters(poly_degree=128, num_scale_moduli=8)
    ctx = CkksContext(params)
    n = params.slot_count

    print("key generation ...")
    keygen = KeyGenerator(ctx, seed=0)
    encryptor = Encryptor(ctx, keygen.create_public_key(), seed=1)
    decryptor = Decryptor(ctx, keygen.secret_key)
    evaluator = Evaluator(ctx)
    relin = keygen.create_relin_key()

    # Server-side model weights (plaintext; only activations are secret).
    w1 = 0.3 * rng.normal(size=(n, n))
    w2 = 0.3 * rng.normal(size=(n, n))
    layer1 = LinearTransform(ctx, w1)
    layer2 = LinearTransform(ctx, w2)
    steps = sorted(set(layer1.required_rotation_steps())
                   | set(layer2.required_rotation_steps()))
    galois = keygen.create_galois_keys(
        [ctx.galois_element_for_step(s) for s in steps]
    )

    # Client encrypts its features.
    x = rng.normal(scale=0.5, size=n)
    ct = encryptor.encrypt_values(x)
    print(f"encrypted {n} features at level {ct.level}")

    # Server: dense -> activation -> dense, all on ciphertexts.
    ct = evaluator.rescale(layer1.apply(ct, evaluator, galois))
    ct = evaluate_polynomial(ct, ACTIVATION, evaluator, relin)
    ct = evaluator.rescale(layer2.apply(ct, evaluator, galois))
    print(f"inference done at level {ct.level}")

    # Client decrypts.
    got = decryptor.decrypt_values(ct).real
    want = plaintext_reference(x, w1, w2)
    err = np.max(np.abs(got - want))
    print(f"max error vs plaintext reference: {err:.2e}")
    print(f"first outputs: encrypted={np.round(got[:4], 4)} "
          f"plaintext={np.round(want[:4], 4)}")
    assert err < 5e-2, "encrypted inference diverged from plaintext"
    print("OK — the server never saw the client's features.")


if __name__ == "__main__":
    main()
