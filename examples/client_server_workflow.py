"""The full privacy-preserving inference workflow, over a simulated wire.

Plays out the deployment the paper motivates (Section I: cloud
datacenter inference on encrypted data) with real serialization between
the two parties:

* the **client** generates keys, encrypts its features, and serializes
  ciphertext + evaluation keys;
* the **server** deserializes, runs an encrypted model — it never holds
  the secret key — and ships the encrypted result back;
* the **client** decrypts.

    python examples/client_server_workflow.py
"""

import numpy as np

from repro.ckks import (
    CkksContext,
    Decryptor,
    EncryptedNetwork,
    Encryptor,
    ActivationLayer,
    DenseLayer,
    KeyGenerator,
    toy_parameters,
)
from repro.ckks.serialize import (
    ciphertext_from_bytes,
    ciphertext_to_bytes,
    params_from_json,
    params_to_json,
)


def main():
    rng = np.random.default_rng(21)

    # ---------------- client side -------------------------------------
    params = toy_parameters(poly_degree=128, num_scale_moduli=6)
    ctx_client = CkksContext(params)
    keygen = KeyGenerator(ctx_client, seed=0)
    encryptor = Encryptor(ctx_client, keygen.create_public_key(), seed=1)
    decryptor = Decryptor(ctx_client, keygen.secret_key)

    features = rng.normal(scale=0.4, size=params.slot_count)
    wire_params = params_to_json(params)
    wire_ct = ciphertext_to_bytes(encryptor.encrypt_values(features))
    print(f"client: encrypted {features.size} features "
          f"({len(wire_ct) / 1024:.1f} KiB on the wire)")

    # ---------------- server side -------------------------------------
    # The server reconstructs the public context from the parameter
    # description; it has model weights but no secret key.
    ctx_server = CkksContext(params_from_json(wire_params))
    from repro.ckks import Evaluator
    evaluator = Evaluator(ctx_server)
    model = EncryptedNetwork([
        DenseLayer(0.3 * rng.normal(size=(16, params.slot_count))),
        ActivationLayer(degree=3, bound=2.0),
    ]).bind(ctx_server)
    # Evaluation keys come from the client (here: shared keygen object;
    # save_galois_keys/load_galois_keys carry them over a real wire).
    keys = model.create_keys(keygen)

    ct_in = ciphertext_from_bytes(wire_ct, ctx_server)
    ct_out = model.apply(ct_in, evaluator, keys)
    wire_result = ciphertext_to_bytes(ct_out)
    print(f"server: ran {len(model.layers)} encrypted layers, result "
          f"{len(wire_result) / 1024:.1f} KiB")

    # ---------------- client side again --------------------------------
    result = decryptor.decrypt_values(
        ciphertext_from_bytes(wire_result, ctx_client)
    ).real[:16]
    expected = model.reference(features)[:16]
    err = np.max(np.abs(result - expected))
    print(f"client: decrypted scores, max error vs plaintext {err:.2e}")
    print(f"        first scores: {np.round(result[:4], 4)}")
    assert err < 0.05
    print("OK — the server computed on data it could never read.")


if __name__ == "__main__":
    main()
