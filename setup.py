"""Legacy setup shim so ``pip install -e .`` works in offline environments.

The project metadata lives in ``pyproject.toml``; this file only exists so
pip can fall back to ``setup.py develop`` when PEP 660 editable builds are
unavailable (no ``wheel`` package, no network).
"""

from setuptools import setup

setup()
